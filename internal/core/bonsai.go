// Package core implements the BONSAI tree: an RCU-compatible balanced
// binary search tree derived from Adams' functional bounded-balance
// trees (§3 of the paper). Lookups are lock-free and never write to
// shared memory; mutations are serialized by the caller (or by the
// tree's internal writer lock) and publish their effects with single
// atomic pointer updates, so a concurrent lookup observes either the
// entire old tree or the entire new tree.
//
// The tree implements the paper's path-copying-elimination optimization
// (§3.3): when a rebuilt subtree is structurally identical to the
// original apart from one child pointer, the writer commits the change
// by updating that one pointer in place instead of copying the path to
// the root. With the paper's weight of 4 this reduces garbage from
// O(log n) to O(1) nodes per insert (≈2 allocations and ≈1 free, with
// ≈0.35 rotations on average). The optimization can be disabled through
// Options.UpdateInPlace for the ablation benchmarks.
//
// Keys are uint64 (the VM system keys regions by start address); values
// are a type parameter.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bonsai/internal/rcu"
)

// DefaultWeight is the bounded-balance weight parameter used by the
// paper (§3.1): neither subtree may contain more than Weight times the
// nodes of its sibling (once both are non-trivial).
const DefaultWeight = 4

// Options configures a Tree.
type Options struct {
	// Weight is the bounded-balance parameter. Zero means DefaultWeight.
	// Must be >= 2 to guarantee termination of rebalancing.
	Weight int

	// UpdateInPlace enables the §3.3 optimization. NewTree enables it
	// by default; set Disabled in Ablation to turn it off.
	UpdateInPlace bool

	// Domain, if non-nil, receives a deferred callback for every node
	// the tree retires, modeling rcu_free. When nil, retired nodes are
	// left to the garbage collector but are still counted.
	Domain *rcu.Domain
}

// node is a tree node (Figure 4). Child pointers are atomic because the
// in-place optimization lets a writer update them while lock-free
// readers traverse. The size field is only ever read and written by the
// single writer, so it needs no synchronization (§3.3). Key and value
// are immutable after the node is published.
type node[V any] struct {
	left  atomic.Pointer[node[V]]
	right atomic.Pointer[node[V]]
	size  uint64
	key   uint64
	val   V
}

// Tree is a BONSAI tree mapping uint64 keys to values of type V.
//
// Read operations (Lookup, Floor, Len via Size snapshot, Ascend, ...)
// are safe to call concurrently with each other and with a single
// mutator. Mutating operations (Insert, Delete, ...) acquire the tree's
// writer lock; callers that already serialize writers (as the VM system
// does with mmap_sem, §3) can use the *Locked variants.
type Tree[V any] struct {
	root atomic.Pointer[node[V]]
	mu   sync.Mutex // writer lock
	opt  Options

	// writer-side statistics (atomic so tests and benchmarks can read
	// them concurrently with a running writer)
	allocs          atomic.Uint64
	frees           atomic.Uint64
	singleRotations atomic.Uint64
	doubleRotations atomic.Uint64
	inPlaceCommits  atomic.Uint64
}

// NewTree returns an empty tree. A zero Options value gives the paper's
// configuration: weight 4 with the in-place optimization enabled.
func NewTree[V any](opt Options) *Tree[V] {
	if opt.Weight == 0 {
		opt.Weight = DefaultWeight
	}
	if opt.Weight < 2 {
		panic(fmt.Sprintf("core: weight %d < 2 cannot maintain balance", opt.Weight))
	}
	return &Tree[V]{opt: opt}
}

// New returns an empty tree with the paper's default configuration and
// the in-place optimization enabled.
func New[V any]() *Tree[V] {
	return NewTree[V](Options{UpdateInPlace: true})
}

func (t *Tree[V]) mkNode(left, right *node[V], key uint64, val V) *node[V] {
	n := &node[V]{size: 1 + nodeSize(left) + nodeSize(right), key: key, val: val}
	n.left.Store(left)
	n.right.Store(right)
	t.allocs.Add(1)
	return n
}

// free retires a node that is no longer reachable from the new version
// of the tree, in an RCU-delayed manner (rcu_free in the paper).
func (t *Tree[V]) free(n *node[V]) {
	t.frees.Add(1)
	if d := t.opt.Domain; d != nil {
		d.Defer(func() { _ = n })
	}
}

func nodeSize[V any](n *node[V]) uint64 {
	if n == nil {
		return 0
	}
	return n.size
}

// Lookup reports the value stored at key. It is lock-free: it reads the
// root pointer once and each child pointer at most once, and performs no
// writes to shared memory (Figure 9). Callers inside an RCU read-side
// critical section are guaranteed that every node they can reach stays
// valid until they leave the critical section.
func (t *Tree[V]) Lookup(key uint64) (V, bool) {
	n := t.root.Load()
	for n != nil && n.key != key {
		if n.key > key {
			n = n.left.Load()
		} else {
			n = n.right.Load()
		}
	}
	if n == nil {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains reports whether key is present.
func (t *Tree[V]) Contains(key uint64) bool {
	_, ok := t.Lookup(key)
	return ok
}

// Floor returns the entry with the greatest key <= key. This is the
// lookup the page-fault handler performs to find the VMA containing a
// faulting address. Like Lookup it is lock-free.
func (t *Tree[V]) Floor(key uint64) (k uint64, v V, ok bool) {
	n := t.root.Load()
	var best *node[V]
	for n != nil {
		switch {
		case n.key == key:
			return n.key, n.val, true
		case n.key < key:
			best = n
			n = n.right.Load()
		default:
			n = n.left.Load()
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Ceiling returns the entry with the smallest key >= key. Lock-free.
func (t *Tree[V]) Ceiling(key uint64) (k uint64, v V, ok bool) {
	n := t.root.Load()
	var best *node[V]
	for n != nil {
		switch {
		case n.key == key:
			return n.key, n.val, true
		case n.key > key:
			best = n
			n = n.left.Load()
		default:
			n = n.right.Load()
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest entry. Lock-free.
func (t *Tree[V]) Min() (k uint64, v V, ok bool) {
	n := t.root.Load()
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for {
		l := n.left.Load()
		if l == nil {
			return n.key, n.val, true
		}
		n = l
	}
}

// Max returns the largest entry. Lock-free.
func (t *Tree[V]) Max() (k uint64, v V, ok bool) {
	n := t.root.Load()
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for {
		r := n.right.Load()
		if r == nil {
			return n.key, n.val, true
		}
		n = r
	}
}

// Len returns the number of entries. It reads the root's writer-
// maintained size field; when racing with a writer the result reflects
// some recent state of the tree.
func (t *Tree[V]) Len() int {
	return int(nodeSize(t.root.Load()))
}

// Insert stores val at key, replacing any existing value. It reports
// whether a new key was inserted (false means an existing key's value
// was replaced).
func (t *Tree[V]) Insert(key uint64, val V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.InsertLocked(key, val)
}

// InsertLocked is Insert for callers that already hold an external
// writer lock covering all mutations of this tree.
func (t *Tree[V]) InsertLocked(key uint64, val V) bool {
	root, added := t.doInsert(t.root.Load(), key, val)
	t.root.Store(root)
	return added
}

// doInsert recurses to the insertion point and rebuilds the tree bottom
// up (Figure 5), committing rotations early when the in-place
// optimization applies.
func (t *Tree[V]) doInsert(n *node[V], key uint64, val V) (*node[V], bool) {
	if n == nil {
		return t.mkNode(nil, nil, key, val), true
	}
	switch {
	case key < n.key:
		nl, added := t.doInsert(n.left.Load(), key, val)
		return t.mkBalanced(n, nl, n.right.Load(), true), added
	case key > n.key:
		nr, added := t.doInsert(n.right.Load(), key, val)
		return t.mkBalanced(n, n.left.Load(), nr, true), added
	default:
		// Replace the value. Nodes are immutable after publication, so
		// build a replacement node sharing both subtrees; the parent's
		// single pointer update (or the root store) commits it.
		out := t.mkNode(n.left.Load(), n.right.Load(), key, val)
		t.free(n)
		return out, false
	}
}

// Delete removes key. It reports whether the key was present.
func (t *Tree[V]) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.DeleteLocked(key)
}

// DeleteLocked is Delete for callers holding an external writer lock.
func (t *Tree[V]) DeleteLocked(key uint64) bool {
	root, deleted := t.doDelete(t.root.Load(), key)
	if deleted {
		t.root.Store(root)
	}
	return deleted
}

// doDelete implements the two delete cases from §3.2–3.3. Removing a
// leaf (or single-child node) just drops it; removing an interior node
// substitutes its successor. The successor is extracted with pure path
// copying (no in-place commits below the deleted node) so that the
// removal of the successor and its substitution become visible in one
// atomic pointer update at or above the deleted node (§3.3's caveat).
func (t *Tree[V]) doDelete(n *node[V], key uint64) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case key < n.key:
		nl, deleted := t.doDelete(n.left.Load(), key)
		if !deleted {
			return n, false
		}
		return t.mkBalanced(n, nl, n.right.Load(), true), true
	case key > n.key:
		nr, deleted := t.doDelete(n.right.Load(), key)
		if !deleted {
			return n, false
		}
		return t.mkBalanced(n, n.left.Load(), nr, true), true
	default:
		l, r := n.left.Load(), n.right.Load()
		switch {
		case l == nil:
			t.free(n)
			return r, true
		case r == nil:
			t.free(n)
			return l, true
		default:
			succ, nr := t.removeMin(r)
			out := t.mkNodeBalanced(succ.key, succ.val, l, nr)
			t.free(succ)
			t.free(n)
			return out, true
		}
	}
}

// removeMin detaches the minimum node of the subtree, rebuilding the
// path with pure path copying (in-place commits are forbidden below the
// node being deleted; see doDelete).
func (t *Tree[V]) removeMin(n *node[V]) (min *node[V], rest *node[V]) {
	l := n.left.Load()
	if l == nil {
		return n, n.right.Load()
	}
	min, nl := t.removeMin(l)
	return min, t.mkBalanced(n, nl, n.right.Load(), false)
}

// mkBalanced rebuilds the subtree previously rooted at cur with the
// given children, restoring the bounded-balance invariant (Figure 6).
// When inPlaceOK and the optimization is enabled and no rotation is
// needed, cur is updated in place, committing any rotation performed
// deeper in the tree with a single pointer store.
func (t *Tree[V]) mkBalanced(cur, left, right *node[V], inPlaceOK bool) *node[V] {
	ln := nodeSize(left)
	rn := nodeSize(right)
	w := uint64(t.opt.Weight)

	var out *node[V]
	switch {
	case ln+rn >= 2 && rn > w*ln:
		out = t.mkBalancedL(left, right, cur.key, cur.val)
	case ln+rn >= 2 && ln > w*rn:
		out = t.mkBalancedR(left, right, cur.key, cur.val)
	case !t.opt.UpdateInPlace || !inPlaceOK:
		out = t.mkNode(left, right, cur.key, cur.val)
	default:
		// In-place commit (§3.3): the rebuilt subtree is structurally
		// identical to the original apart from the child pointers, so
		// updating them directly publishes the deeper change without
		// copying the path. Each store is individually atomic, and the
		// contents of the tree are identical before and after, so a
		// concurrent lookup cannot be misdirected. The size field is
		// writer-private and needs no atomicity.
		if cur.left.Load() != left {
			cur.left.Store(left)
		}
		if cur.right.Load() != right {
			cur.right.Store(right)
		}
		cur.size = 1 + ln + rn
		t.inPlaceCommits.Add(1)
		return cur
	}
	t.free(cur)
	return out
}

// mkNodeBalanced joins two subtrees under a fresh key/value, rebalancing
// if the pair is outside the weight bound. It is used by delete when
// substituting the successor for an interior node.
func (t *Tree[V]) mkNodeBalanced(key uint64, val V, left, right *node[V]) *node[V] {
	ln, rn := nodeSize(left), nodeSize(right)
	w := uint64(t.opt.Weight)
	switch {
	case ln+rn >= 2 && rn > w*ln:
		return t.mkBalancedL(left, right, key, val)
	case ln+rn >= 2 && ln > w*rn:
		return t.mkBalancedR(left, right, key, val)
	default:
		return t.mkNode(left, right, key, val)
	}
}

// mkBalancedL performs a single or double left rotation (Figure 7),
// choosing between them by comparing the inner and outer grandchild
// sizes as Adams' trees do.
func (t *Tree[V]) mkBalancedL(left, right *node[V], key uint64, val V) *node[V] {
	if nodeSize(right.left.Load()) < nodeSize(right.right.Load()) {
		return t.singleL(left, right, key, val)
	}
	return t.doubleL(left, right, key, val)
}

func (t *Tree[V]) mkBalancedR(left, right *node[V], key uint64, val V) *node[V] {
	if nodeSize(left.right.Load()) < nodeSize(left.left.Load()) {
		return t.singleR(left, right, key, val)
	}
	return t.doubleR(left, right, key, val)
}

// singleL builds the rotated subtree of Figure 3/Figure 8 functionally:
// two new nodes, no in-place pointer updates, with the displaced node
// delay-freed.
func (t *Tree[V]) singleL(left, right *node[V], key uint64, val V) *node[V] {
	t.singleRotations.Add(1)
	out := t.mkNode(
		t.mkNode(left, right.left.Load(), key, val),
		right.right.Load(),
		right.key, right.val)
	t.free(right)
	return out
}

func (t *Tree[V]) singleR(left, right *node[V], key uint64, val V) *node[V] {
	t.singleRotations.Add(1)
	out := t.mkNode(
		left.left.Load(),
		t.mkNode(left.right.Load(), right, key, val),
		left.key, left.val)
	t.free(left)
	return out
}

func (t *Tree[V]) doubleL(left, right *node[V], key uint64, val V) *node[V] {
	t.doubleRotations.Add(1)
	rl := right.left.Load()
	out := t.mkNode(
		t.mkNode(left, rl.left.Load(), key, val),
		t.mkNode(rl.right.Load(), right.right.Load(), right.key, right.val),
		rl.key, rl.val)
	t.free(rl)
	t.free(right)
	return out
}

func (t *Tree[V]) doubleR(left, right *node[V], key uint64, val V) *node[V] {
	t.doubleRotations.Add(1)
	lr := left.right.Load()
	out := t.mkNode(
		t.mkNode(left.left.Load(), lr.left.Load(), left.key, left.val),
		t.mkNode(lr.right.Load(), right, key, val),
		lr.key, lr.val)
	t.free(lr)
	t.free(left)
	return out
}
