package core

import (
	"math/rand"
	"testing"
)

func TestSnapshotFrozenView(t *testing.T) {
	tr := NewTree[int](Options{UpdateInPlace: false})
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, int(i))
	}
	snap := tr.Snapshot()

	// Mutate heavily after the snapshot.
	for i := uint64(0); i < 100; i += 2 {
		tr.Delete(i)
	}
	for i := uint64(1000); i < 1200; i++ {
		tr.Insert(i, 0)
	}

	// The snapshot still holds exactly the original 100 entries.
	if snap.Len() != 100 {
		t.Fatalf("snapshot Len = %d", snap.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := snap.Lookup(i); !ok || v != int(i) {
			t.Fatalf("snapshot lost key %d (%d,%v)", i, v, ok)
		}
	}
	if _, ok := snap.Lookup(1000); ok {
		t.Fatal("snapshot sees a later insert")
	}
	keys := snap.Keys()
	if len(keys) != 100 || keys[0] != 0 || keys[99] != 99 {
		t.Fatalf("snapshot keys wrong: %d entries", len(keys))
	}
	// The live tree reflects the mutations.
	if tr.Len() != 50+200 {
		t.Fatalf("live Len = %d", tr.Len())
	}
}

func TestSnapshotConcurrentWithWriter(t *testing.T) {
	tr := NewTree[int](Options{UpdateInPlace: false})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(rng.Intn(10000)), i)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(10000))
			if rng.Intn(2) == 0 {
				tr.Insert(k, 1)
			} else {
				tr.Delete(k)
			}
		}
	}()
	for round := 0; round < 200; round++ {
		snap := tr.Snapshot()
		// A snapshot taken during mutation must be internally
		// consistent: sorted keys, count matching Len.
		keys := snap.Keys()
		if len(keys) != snap.Len() {
			t.Fatalf("snapshot Len %d but %d keys iterated", snap.Len(), len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("snapshot keys unsorted at %d", i)
			}
		}
	}
	close(stop)
	<-done
}

func TestSnapshotPanicsWithOptimization(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot with UpdateInPlace did not panic")
		}
	}()
	New[int]().Snapshot()
}
