package core

// Ascend calls fn for each entry in ascending key order until fn returns
// false. Like Lookup it is lock-free: it captures the root pointer once
// and reads each child pointer at most once per visit. When racing with
// a writer it observes a mixture of committed states, each of which is a
// valid tree with the same semantics guarantees a lookup has — this
// matches what the paper's munmap scan gets, which is why mutators in
// the VM system iterate only while holding the write lock.
func (t *Tree[V]) Ascend(fn func(key uint64, val V) bool) {
	ascend(t.root.Load(), fn)
}

func ascend[V any](n *node[V], fn func(uint64, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left.Load(), fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right.Load(), fn)
}

// AscendRange calls fn for each entry with lo <= key < hi in ascending
// order until fn returns false.
func (t *Tree[V]) AscendRange(lo, hi uint64, fn func(key uint64, val V) bool) {
	ascendRange(t.root.Load(), lo, hi, fn)
}

func ascendRange[V any](n *node[V], lo, hi uint64, fn func(uint64, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= lo {
		if !ascendRange(n.left.Load(), lo, hi, fn) {
			return false
		}
		if n.key < hi && !fn(n.key, n.val) {
			return false
		}
	}
	if n.key < hi {
		return ascendRange(n.right.Load(), lo, hi, fn)
	}
	return true
}

// Keys returns all keys in ascending order. Intended for tests and
// examples.
func (t *Tree[V]) Keys() []uint64 {
	keys := make([]uint64, 0, t.Len())
	t.Ascend(func(k uint64, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Height returns the height of the tree (0 for an empty tree, 1 for a
// single node). It is a writer-side diagnostic.
func (t *Tree[V]) Height() int {
	return height(t.root.Load())
}

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left.Load()), height(n.right.Load())
	if l > r {
		return l + 1
	}
	return r + 1
}
