package core

import "fmt"

// Stats is a snapshot of the tree's writer-side counters. The paper
// reports that with weight 4 and the §3.3 optimization, insertion costs
// about 2 allocations, 1 free, and 0.35 rotations on average regardless
// of tree size; these counters let tests and benchmarks verify that.
type Stats struct {
	Allocs          uint64 // nodes allocated
	Frees           uint64 // nodes retired (delay-freed)
	SingleRotations uint64
	DoubleRotations uint64
	InPlaceCommits  uint64 // subtree commits that avoided path copying
}

// Rotations returns the total rotation count.
func (s Stats) Rotations() uint64 { return s.SingleRotations + s.DoubleRotations }

// Stats returns a snapshot of the tree's counters.
func (t *Tree[V]) Stats() Stats {
	return Stats{
		Allocs:          t.allocs.Load(),
		Frees:           t.frees.Load(),
		SingleRotations: t.singleRotations.Load(),
		DoubleRotations: t.doubleRotations.Load(),
		InPlaceCommits:  t.inPlaceCommits.Load(),
	}
}

// ResetStats zeroes the tree's counters. Callers must ensure no
// concurrent mutator is running.
func (t *Tree[V]) ResetStats() {
	t.allocs.Store(0)
	t.frees.Store(0)
	t.singleRotations.Store(0)
	t.doubleRotations.Store(0)
	t.inPlaceCommits.Store(0)
}

// Validate checks the tree's structural invariants: binary-search-tree
// key order, correct writer-maintained size fields, and the bounded-
// balance weight invariant. It returns a descriptive error on the first
// violation. Validate must not race with a mutator.
func (t *Tree[V]) Validate() error {
	_, err := t.validate(t.root.Load(), 0, ^uint64(0), true, true)
	return err
}

func (t *Tree[V]) validate(n *node[V], lo, hi uint64, loOpen, hiOpen bool, // bounds
) (size uint64, err error) {
	if n == nil {
		return 0, nil
	}
	if !loOpen && n.key <= lo {
		return 0, fmt.Errorf("core: BST violation: key %d <= lower bound %d", n.key, lo)
	}
	if !hiOpen && n.key >= hi {
		return 0, fmt.Errorf("core: BST violation: key %d >= upper bound %d", n.key, hi)
	}
	l, r := n.left.Load(), n.right.Load()
	ln, err := t.validate(l, lo, n.key, loOpen, false)
	if err != nil {
		return 0, err
	}
	rn, err := t.validate(r, n.key, hi, false, hiOpen)
	if err != nil {
		return 0, err
	}
	if n.size != 1+ln+rn {
		return 0, fmt.Errorf("core: size field %d != 1+%d+%d at key %d", n.size, ln, rn, n.key)
	}
	w := uint64(t.opt.Weight)
	if ln+rn >= 2 {
		if rn > w*ln && rn > w*ln+w { // allow the transient slack Adams' scheme permits
			return 0, fmt.Errorf("core: weight violation at key %d: right %d > %d*left %d", n.key, rn, w, ln)
		}
		if ln > w*rn && ln > w*rn+w {
			return 0, fmt.Errorf("core: weight violation at key %d: left %d > %d*right %d", n.key, ln, w, rn)
		}
	}
	return 1 + ln + rn, nil
}
