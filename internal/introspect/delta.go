package introspect

import "bonsai/internal/machine"

// DeltaEngine turns successive machine snapshots into interval deltas
// — one source of truth for counter differencing, shared by cmd/soak's
// vmstat line, cmd/vmtop's rate columns, and the exposition checker's
// monotonicity reasoning. The zero value is ready to use; the first
// Step reports First and zero deltas.
type DeltaEngine struct {
	started bool
	prev    machine.Snapshot
	tenants map[string]machine.TenantSnapshot
}

// TenantDelta is one tenant's interval activity.
type TenantDelta struct {
	// Cur is the tenant's current snapshot entry.
	Cur machine.TenantSnapshot
	// Faults and Evictions are interval deltas; a tenant admitted since
	// the previous sample reports its whole lifetime.
	Faults    int64
	Evictions int64
}

// Delta is one interval's machine activity.
type Delta struct {
	// Snapshot is the sample the delta was computed against.
	Snapshot machine.Snapshot
	// First marks the engine's first sample (all deltas zero).
	First bool
	// Interval deltas. The machine source's counters are monotonic, but
	// these stay signed so SpaceSet-backed sources — whose rollup can
	// shrink when an epoch's spaces are removed — render a dip instead
	// of a garbage unsigned wrap.
	Faults       int64
	MapOps       int64
	Scans        int64
	Evictions    int64
	Writebacks   int64
	GracePeriods int64
	OOMKills     int64
	// Tenants holds per-tenant deltas in snapshot order.
	Tenants []TenantDelta
}

// ReclaimScans sums the reclaim ladder's run counters: kswapd cycles,
// direct-reclaim runs, and tenant-local runs.
func ReclaimScans(s machine.Snapshot) uint64 {
	return s.Reclaim.KswapdCycles + s.Reclaim.DirectRuns + s.Reclaim.AccountRuns
}

// ReclaimEvictions sums the pages evicted by every reclaim path.
func ReclaimEvictions(s machine.Snapshot) uint64 {
	return s.Reclaim.KswapdEvicted + s.Reclaim.DirectEvicted + s.Reclaim.AccountEvicted
}

// Step folds in the next sample and returns the interval's deltas.
func (e *DeltaEngine) Step(sn machine.Snapshot) Delta {
	d := Delta{Snapshot: sn}
	if !e.started {
		d.First = true
	} else {
		p := e.prev
		d.Faults = int64(sn.Latency.Fault.Count) - int64(p.Latency.Fault.Count)
		d.MapOps = int64(sn.Latency.MapOp.Count) - int64(p.Latency.MapOp.Count)
		d.Scans = int64(ReclaimScans(sn)) - int64(ReclaimScans(p))
		d.Evictions = int64(ReclaimEvictions(sn)) - int64(ReclaimEvictions(p))
		d.Writebacks = int64(sn.Reclaim.Writebacks) - int64(p.Reclaim.Writebacks)
		d.GracePeriods = int64(sn.Latency.GP.Count) - int64(p.Latency.GP.Count)
		d.OOMKills = int64(sn.OOMKills) - int64(p.OOMKills)
	}
	tenants := make(map[string]machine.TenantSnapshot, len(sn.Tenants))
	for _, ts := range sn.Tenants {
		td := TenantDelta{Cur: ts, Faults: int64(ts.Fault.Count)}
		if ts.Account != nil {
			td.Evictions = int64(ts.Account.Evictions)
		}
		if prev, ok := e.tenants[ts.Name]; ok {
			td.Faults -= int64(prev.Fault.Count)
			if prev.Account != nil {
				td.Evictions -= int64(prev.Account.Evictions)
			}
		}
		d.Tenants = append(d.Tenants, td)
		tenants[ts.Name] = ts
	}
	e.prev = sn
	e.tenants = tenants
	e.started = true
	return d
}
