package introspect

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition contract: a strict
// parser for the Prometheus text format subset WriteMetrics emits, and
// the monotonicity checker the tests and cmd/promcheck run across two
// scrapes. Hand-rolled because the repo takes no dependencies.

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    string // counter, gauge, summary, untyped
	Help    string
	Samples []Sample
}

// Sample is one exposition line.
type Sample struct {
	// Name is the sample's full name — the family name, or for summary
	// counts the family name + "_count".
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus sorted labels) for
// duplicate detection and cross-scrape matching.
func (s Sample) Key() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

// ParseExposition parses a text exposition document, enforcing the
// conventions WriteMetrics promises:
//
//   - HELP and TYPE declared at most once per family, TYPE before any
//     of the family's samples;
//   - samples grouped under a declared family (summary families also
//     own their _count samples);
//   - counter names end in _total, non-counters do not;
//   - no duplicate sample (same name and label set);
//   - values parse as floats; label syntax well-formed.
//
// Families are returned in declaration order.
func ParseExposition(text string) ([]Family, error) {
	var fams []Family
	idx := make(map[string]int) // family name -> fams index
	seen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a name", lineNo)
			}
			if i, ok := idx[name]; ok {
				if fams[i].Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				fams[i].Help = strings.TrimPrefix(rest, name+" ")
				continue
			}
			idx[name] = len(fams)
			fams = append(fams, Family{Name: name, Help: strings.TrimPrefix(rest, name+" ")})
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			i, ok := idx[name]
			if !ok {
				idx[name] = len(fams)
				fams = append(fams, Family{Name: name, Type: typ})
				continue
			}
			if fams[i].Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if len(fams[i].Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			fams[i].Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := s.Name
		i, ok := idx[famName]
		if !ok && strings.HasSuffix(famName, "_count") {
			// A summary's _count belongs to the base family.
			base := strings.TrimSuffix(famName, "_count")
			if j, ok2 := idx[base]; ok2 && fams[j].Type == "summary" {
				i, ok = j, true
			}
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no declared family", lineNo, famName)
		}
		fam := &fams[i]
		if fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE", lineNo, famName)
		}
		key := s.Key()
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	for _, f := range fams {
		isTotal := strings.HasSuffix(f.Name, "_total")
		if f.Type == "counter" && !isTotal {
			return nil, fmt.Errorf("counter %s does not end in _total", f.Name)
		}
		if f.Type != "counter" && isTotal {
			return nil, fmt.Errorf("%s %s must not end in _total", f.Type, f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s declared but has no samples", f.Name)
		}
		if f.Type == "summary" {
			for _, s := range f.Samples {
				if s.Name == f.Name {
					if _, ok := s.Labels["quantile"]; !ok {
						return nil, fmt.Errorf("summary %s sample without quantile label", f.Name)
					}
				}
			}
		}
	}
	return fams, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			k := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var v strings.Builder
			i := 0
			for i < len(rest) {
				c := rest[i]
				if c == '\\' && i+1 < len(rest) {
					switch rest[i+1] {
					case '\\':
						v.WriteByte('\\')
					case '"':
						v.WriteByte('"')
					case 'n':
						v.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape in %q", line)
					}
					i += 2
					continue
				}
				if c == '"' {
					break
				}
				v.WriteByte(c)
				i++
			}
			if i >= len(rest) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			if _, dup := s.Labels[k]; dup {
				return s, fmt.Errorf("duplicate label %s in %q", k, line)
			}
			s.Labels[k] = v.String()
			rest = rest[i+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("malformed label list in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample without value in %q", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; WriteMetrics
	// never emits one, so reject extra fields to keep the contract tight.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// CheckMonotonic verifies counter discipline across two scrapes of the
// same target: every counter sample present in both must not decrease,
// and counter families present in the first scrape must still be
// declared in the second (series may come and go with tenants; whole
// families may not silently vanish).
func CheckMonotonic(prev, cur []Family) error {
	prevVals := map[string]float64{}
	prevFams := map[string]bool{}
	for _, f := range prev {
		if f.Type != "counter" {
			continue
		}
		prevFams[f.Name] = true
		for _, s := range f.Samples {
			prevVals[s.Key()] = s.Value
		}
	}
	curFams := map[string]bool{}
	for _, f := range cur {
		if f.Type != "counter" {
			continue
		}
		curFams[f.Name] = true
		for _, s := range f.Samples {
			if pv, ok := prevVals[s.Key()]; ok && s.Value < pv {
				return fmt.Errorf("counter %s regressed: %v -> %v", s.Key(), pv, s.Value)
			}
		}
	}
	for name := range prevFams {
		if !curFams[name] {
			return fmt.Errorf("counter family %s vanished between scrapes", name)
		}
	}
	return nil
}
