package introspect

import (
	"fmt"
	"io"
	"time"

	"bonsai/internal/contention"
	"bonsai/internal/machine"
	"bonsai/internal/vm"
)

// hugePages converts live huge entries (vm.Stats.AnonHugePages) to the
// base-page figure the meminfo line reports, matching Linux's
// AnonHugePages-in-kB convention.
const hugePages = int64(vm.HugeSpan / vm.PageSize)

// procfs-style plain-text renderers. Shapes follow the Linux files
// they imitate loosely — aligned "Key:  value" lines for meminfo,
// one-record-per-line for locks — so they stay greppable from a shell
// while a run is live.

// tenantRSS picks the best resident-set figure a snapshot offers: the
// account's charged frames when the tenant is limited, else the signed
// net of mapped pages (evictions revoke PTEs without a munmap).
func tenantRSS(ts machine.TenantSnapshot) int64 {
	if ts.Account != nil {
		return ts.Account.Charged
	}
	return int64(ts.Space.PagesMapped) - int64(ts.Space.PagesUnmapped) - int64(ts.Space.EvictUnmaps)
}

// WriteMeminfo renders /proc/meminfo: the machine-wide frame pool with
// reclaim watermarks, then one block per tenant.
func WriteMeminfo(w io.Writer, src Source) error {
	sn := src.Snapshot()
	pw := &errWriter{w: w}
	pw.printf("MemTotal:       %8d frames\n", sn.FramesTotal)
	pw.printf("MemInUse:       %8d frames\n", sn.FramesInUse)
	pw.printf("MemFree:        %8d frames\n", int64(sn.FramesTotal)-sn.FramesInUse)
	if alloc := src.Allocator(); alloc != nil {
		pw.printf("WatermarkLow:   %8d frames\n", alloc.LowWater())
		pw.printf("WatermarkHigh:  %8d frames\n", alloc.HighWater())
	}
	pw.printf("OOMKills:       %8d\n", sn.OOMKills)
	pw.printf("ReclaimEvicted: %8d pages\n", ReclaimEvictions(sn))
	pw.printf("Writebacks:     %8d pages\n", sn.Reclaim.Writebacks)
	var anonHuge int64
	for _, ts := range sn.Tenants {
		anonHuge += ts.Space.AnonHugePages
	}
	pw.printf("AnonHugePages:  %8d pages\n", anonHuge*hugePages)
	for _, ts := range sn.Tenants {
		pw.printf("\nTenant: %s\n", ts.Name)
		limit := ts.Limit
		if ts.Account != nil {
			limit = ts.Account.Limit
		}
		if limit > 0 {
			pw.printf("  Limit:        %8d frames\n", limit)
		} else {
			pw.printf("  Limit:        unlimited\n")
		}
		pw.printf("  RSS:          %8d frames\n", tenantRSS(ts))
		if ts.Account != nil {
			pw.printf("  MaxRSS:       %8d frames\n", ts.Account.MaxCharged)
			pw.printf("  LimitHits:    %8d\n", ts.Account.LimitHits)
			pw.printf("  Evictions:    %8d pages\n", ts.Account.Evictions)
		}
		pw.printf("  AnonHuge:     %8d pages\n", ts.Space.AnonHugePages*hugePages)
		pw.printf("  Faults:       %8d\n", ts.Fault.Count)
		pw.printf("  FaultP99:     %8v\n", time.Duration(ts.Fault.P99Ns))
	}
	return pw.err
}

// WriteLocks renders /proc/locks: every live range-lock guard — held
// and queued — across every tenant's member spaces, plus designs on
// the global mmap_sem, which report no table. Reading takes only each
// manager's own mutex, far below everything interesting.
func WriteLocks(w io.Writer, src Source) error {
	pw := &errWriter{w: w}
	pw.printf("# tenant space guard  range              state    age\n")
	records := 0
	for _, t := range src.Tenants() {
		for wi, as := range t.Spaces {
			guards, ok := as.RangeGuards()
			if !ok {
				pw.printf("%s %d - (global mmap_sem design: no range table)\n", t.Name, wi)
				continue
			}
			for _, g := range guards {
				state := "HELD"
				if g.Waiting {
					state = "WAITING"
				}
				pw.printf("%s %d %6d [%#x, %#x) %-7s %v\n",
					t.Name, wi, g.ID, g.Lo, g.Hi, state, time.Duration(g.AgeNs).Round(time.Microsecond))
				records++
			}
		}
	}
	pw.printf("# %d guards live\n", records)
	return pw.err
}

// WriteRCU renders /proc/rcu: domain counters, grace-period latency,
// and the per-shard callback backlog.
func WriteRCU(w io.Writer, src Source) error {
	pw := &errWriter{w: w}
	dom := src.Domain()
	if dom == nil {
		pw.printf("no RCU domain (source is empty)\n")
		return pw.err
	}
	st := dom.Stats()
	gp := "idle"
	if st.GPInFlight {
		gp = "IN FLIGHT"
	}
	pw.printf("GracePeriods:     %8d (%s)\n", st.GracePeriods, gp)
	pw.printf("Readers:          %8d\n", st.Readers)
	pw.printf("CallbacksQueued:  %8d\n", st.Defers)
	pw.printf("CallbacksRan:     %8d\n", st.Ran)
	pw.printf("Pending:          %8d (high water %d)\n", st.Pending, st.PendingHighWater)
	pw.printf("OverBudget:       %8d\n", st.OverBudget)
	pw.printf("GPLatency:        avg %v  max %v  p99 %v\n",
		st.GPLatencyAvg.Round(time.Microsecond), st.GPLatencyMax.Round(time.Microsecond),
		time.Duration(st.GP.P99Ns).Round(time.Microsecond))
	for i, n := range st.ShardPending {
		pw.printf("shard %2d: pending %6d", i, n)
		if i < len(st.ShardQueued) {
			pw.printf("  queued %8d", st.ShardQueued[i])
		}
		if i < len(st.ShardDrains) {
			pw.printf("  drains %8d", st.ShardDrains[i])
		}
		pw.printf("\n")
	}
	return pw.err
}

// WriteSmaps renders /proc/<tenant>/smaps: one block per VMA per
// member space, walked under RCU read sections only.
func WriteSmaps(w io.Writer, t TenantSpaces) error {
	pw := &errWriter{w: w}
	for wi, as := range t.Spaces {
		if len(t.Spaces) > 1 {
			pw.printf("# space %d\n", wi)
		}
		for _, r := range as.Smaps() {
			name := r.File
			if name == "" {
				name = "[anon]"
			}
			pw.printf("%016x-%016x %s %s %s\n", r.Start, r.End, r.Prot, r.Flags, name)
			pw.printf("Size:     %8d pages\n", r.Pages)
			pw.printf("Rss:      %8d pages\n", r.RSS)
			pw.printf("Shared:   %8d pages\n", r.Shared)
			pw.printf("Private:  %8d pages\n", r.Private)
			pw.printf("Cow:      %8d pages\n", r.Cow)
			pw.printf("Dirty:    %8d pages\n", r.Dirty)
		}
	}
	return pw.err
}

// WriteContention renders /debug/contention: the profiler's top sites
// by cumulative wait.
func WriteContention(w io.Writer, sites []contention.SiteStats) error {
	pw := &errWriter{w: w}
	if sites == nil {
		pw.printf("contention profiler disarmed (no server serving?)\n")
		return pw.err
	}
	pw.printf("# site               range                    waits   total-wait     max-wait\n")
	for _, s := range sites {
		rng := "-"
		if s.Lo != 0 || s.Hi != 0 {
			rng = fmt.Sprintf("[%#x, %#x)", s.Lo, s.Hi)
		}
		pw.printf("%-20s %-22s %8d %12v %12v\n",
			s.Site, rng, s.Waits,
			time.Duration(s.TotalWaitNs).Round(time.Microsecond),
			time.Duration(s.MaxWaitNs).Round(time.Microsecond))
	}
	return pw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, err := fmt.Fprintf(e.w, format, args...)
	if err != nil {
		e.err = err
	}
}
