package introspect

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bonsai/internal/contention"
	"bonsai/internal/machine"
)

// Metric naming conventions (documented in the README's introspection
// section, enforced by the exposition tests and cmd/promcheck):
//
//   - every family is vm_-prefixed;
//   - counters end in _total and never decrease while their series
//     exists (the machine source's departed-latency accumulators are
//     what makes the fault/map-op counts churn-proof);
//   - gauges never end in _total;
//   - latency percentiles are summaries in nanoseconds: a _ns family
//     with quantile labels plus a _ns_count sample. Summary counts are
//     not typed as counters (a SpaceSet source's can regress);
//   - per-tenant series carry a tenant label and disappear when the
//     tenant departs; contention series carry site (and range) labels
//     and cover the top contended sites only, to bound cardinality.

// lbl is one label pair.
type lbl struct{ k, v string }

// promWriter accumulates one exposition document, tracking family
// declarations so HELP/TYPE are emitted exactly once per family.
type promWriter struct {
	w        io.Writer
	err      error
	declared map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, declared: make(map[string]bool)}
}

// family declares a metric family; typ is counter, gauge, or summary.
// Declaring the same family twice is a programming error the
// exposition tests would catch as a duplicate.
func (p *promWriter) family(name, typ, help string) {
	if p.declared[name] {
		p.fail(fmt.Errorf("introspect: duplicate family %q", name))
		return
	}
	p.declared[name] = true
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// sample emits one sample line. name must be the declared family name
// or, for summaries, family+"_count".
func (p *promWriter) sample(name string, labels []lbl, v float64) {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.v))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	p.printf("%s %s\n", b.String(), strconv.FormatFloat(v, 'g', -1, 64))
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, err := fmt.Fprintf(p.w, format, args...)
	p.fail(err)
}

func (p *promWriter) fail(err error) {
	if p.err == nil && err != nil {
		p.err = err
	}
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// summary emits a latency summary family: quantile samples (p50, p99,
// p999) plus the _count sample, all in nanoseconds.
func (p *promWriter) summary(name, help string, labels []lbl, s statsLatency) {
	p.family(name, "summary", help)
	p.summarySeries(name, labels, s)
}

// summarySeries emits one label set's samples under an already-declared
// summary family.
func (p *promWriter) summarySeries(name string, labels []lbl, s statsLatency) {
	q := func(quantile string, v int64) {
		p.sample(name, append(append([]lbl(nil), labels...), lbl{"quantile", quantile}), float64(v))
	}
	q("0.5", s.P50Ns)
	q("0.99", s.P99Ns)
	q("0.999", s.P999Ns)
	p.sample(name+"_count", labels, float64(s.Count))
}

// statsLatency is the subset of stats.LatencyStats the writer needs;
// declared structurally so prom.go stays decoupled from the field set.
type statsLatency struct {
	Count                int64
	P50Ns, P99Ns, P999Ns int64
}

// contentionTopN bounds the per-site contention series cardinality.
const contentionTopN = 10

// WriteMetrics renders the source's current state as one Prometheus
// text exposition document.
func WriteMetrics(w io.Writer, src Source) error {
	sn := src.Snapshot()
	p := newPromWriter(w)

	p.family("vm_instance_info", "gauge", "Constant 1, labeled with the introspection source's name.")
	p.sample("vm_instance_info", []lbl{{"label", src.Label()}}, 1)

	p.family("vm_pool_frames", "gauge", "Physical frame pool occupancy by state.")
	p.sample("vm_pool_frames", []lbl{{"state", "total"}}, float64(sn.FramesTotal))
	p.sample("vm_pool_frames", []lbl{{"state", "in_use"}}, float64(sn.FramesInUse))
	p.sample("vm_pool_frames", []lbl{{"state", "free"}}, float64(int64(sn.FramesTotal)-sn.FramesInUse))
	if alloc := src.Allocator(); alloc != nil {
		p.family("vm_pool_watermark_frames", "gauge", "Reclaim watermarks: kswapd wakes below low, parks above high.")
		p.sample("vm_pool_watermark_frames", []lbl{{"level", "low"}}, float64(alloc.LowWater()))
		p.sample("vm_pool_watermark_frames", []lbl{{"level", "high"}}, float64(alloc.HighWater()))
	}

	p.family("vm_tenants_live", "gauge", "Live tenants.")
	p.sample("vm_tenants_live", nil, float64(len(sn.Tenants)))
	p.family("vm_tenants_admitted_total", "counter", "Tenants ever admitted.")
	p.sample("vm_tenants_admitted_total", nil, float64(sn.TenantsAdmitted))
	p.family("vm_tenants_evicted_total", "counter", "Tenants ever evicted.")
	p.sample("vm_tenants_evicted_total", nil, float64(sn.TenantsEvicted))
	p.family("vm_oom_kills_total", "counter", "Killer-of-last-resort invocations, machine-wide.")
	p.sample("vm_oom_kills_total", nil, float64(sn.OOMKills))
	p.family("vm_cross_tenant_evictions_total", "counter", "Pages evicted from under-limit tenants (the fairness metric; ~0 in a healthy run).")
	p.sample("vm_cross_tenant_evictions_total", nil, float64(sn.CrossTenantEvictions))

	p.family("vm_reclaim_runs_total", "counter", "Reclaim ladder runs by path.")
	p.sample("vm_reclaim_runs_total", []lbl{{"path", "kswapd"}}, float64(sn.Reclaim.KswapdCycles))
	p.sample("vm_reclaim_runs_total", []lbl{{"path", "direct"}}, float64(sn.Reclaim.DirectRuns))
	p.sample("vm_reclaim_runs_total", []lbl{{"path", "account"}}, float64(sn.Reclaim.AccountRuns))
	p.family("vm_reclaim_evicted_pages_total", "counter", "Pages evicted by path.")
	p.sample("vm_reclaim_evicted_pages_total", []lbl{{"path", "kswapd"}}, float64(sn.Reclaim.KswapdEvicted))
	p.sample("vm_reclaim_evicted_pages_total", []lbl{{"path", "direct"}}, float64(sn.Reclaim.DirectEvicted))
	p.sample("vm_reclaim_evicted_pages_total", []lbl{{"path", "account"}}, float64(sn.Reclaim.AccountEvicted))
	p.family("vm_reclaim_writebacks_total", "counter", "Dirty pages written back before eviction.")
	p.sample("vm_reclaim_writebacks_total", nil, float64(sn.Reclaim.Writebacks))
	p.family("vm_reclaim_scan_passes_total", "counter", "Clock passes over the cache rotation.")
	p.sample("vm_reclaim_scan_passes_total", nil, float64(sn.Reclaim.ScanPasses))
	p.family("vm_reclaim_injected_stalls_total", "counter", "Direct-reclaim runs failed by the stall failpoint.")
	p.sample("vm_reclaim_injected_stalls_total", nil, float64(sn.Reclaim.InjectedStalls))

	writeTHPMetrics(p, sn)

	if dom := src.Domain(); dom != nil {
		rs := dom.Stats()
		p.family("vm_rcu_grace_periods_total", "counter", "RCU grace periods completed.")
		p.sample("vm_rcu_grace_periods_total", nil, float64(rs.GracePeriods))
		p.family("vm_rcu_callbacks_queued_total", "counter", "Callbacks queued via Defer.")
		p.sample("vm_rcu_callbacks_queued_total", nil, float64(rs.Defers))
		p.family("vm_rcu_callbacks_ran_total", "counter", "Callbacks executed.")
		p.sample("vm_rcu_callbacks_ran_total", nil, float64(rs.Ran))
		p.family("vm_rcu_pending_callbacks", "gauge", "Callbacks queued behind the next grace period.")
		p.sample("vm_rcu_pending_callbacks", nil, float64(rs.Pending))
		p.family("vm_rcu_gp_in_flight", "gauge", "1 while a grace period is executing.")
		gp := 0.0
		if rs.GPInFlight {
			gp = 1
		}
		p.sample("vm_rcu_gp_in_flight", nil, gp)
		p.family("vm_rcu_readers", "gauge", "Registered read-side contexts.")
		p.sample("vm_rcu_readers", nil, float64(rs.Readers))
	}

	p.summary("vm_fault_latency_ns", "Page-fault latency, machine-wide (fast path through OOM ladder).", nil,
		statsLatency{int64(sn.Latency.Fault.Count), sn.Latency.Fault.P50Ns, sn.Latency.Fault.P99Ns, sn.Latency.Fault.P999Ns})
	p.summary("vm_map_op_latency_ns", "Mapping-operation latency (mmap/munmap/mprotect/madvise), machine-wide.", nil,
		statsLatency{int64(sn.Latency.MapOp.Count), sn.Latency.MapOp.P50Ns, sn.Latency.MapOp.P99Ns, sn.Latency.MapOp.P999Ns})
	p.summary("vm_range_wait_ns", "Contended range-lock wait latency, machine-wide.", nil,
		statsLatency{int64(sn.Latency.RangeWait.Count), sn.Latency.RangeWait.P50Ns, sn.Latency.RangeWait.P99Ns, sn.Latency.RangeWait.P999Ns})
	p.summary("vm_gp_latency_ns", "RCU grace-period latency.", nil,
		statsLatency{int64(sn.Latency.GP.Count), sn.Latency.GP.P50Ns, sn.Latency.GP.P99Ns, sn.Latency.GP.P999Ns})
	p.summary("vm_reclaim_scan_ns", "Reclaim scan duration (time under the scan lock).", nil,
		statsLatency{int64(sn.Latency.ReclaimScan.Count), sn.Latency.ReclaimScan.P50Ns, sn.Latency.ReclaimScan.P99Ns, sn.Latency.ReclaimScan.P999Ns})

	writeTenantMetrics(p, sn)
	writeContentionMetrics(p)
	return p.err
}

// writeTHPMetrics emits the machine-wide transparent-huge-page
// families, summed over the tenants' root spaces (the same rollup
// meminfo's AnonHugePages line reports).
func writeTHPMetrics(p *promWriter, sn machine.Snapshot) {
	var hugeFaults, fallbacks, collapses, collapseFails, splits, zaps uint64
	var anonHuge int64
	for _, ts := range sn.Tenants {
		s := &ts.Space
		hugeFaults += s.THPHugeFaults
		fallbacks += s.THPFallbacks
		collapses += s.THPCollapses
		collapseFails += s.THPCollapseFails
		splits += s.THPSplits
		zaps += s.THPZaps
		anonHuge += s.AnonHugePages
	}
	p.family("vm_thp_faults_total", "counter", "Huge-eligible anonymous faults by outcome: huge entry installed, or fallback to base pages.")
	p.sample("vm_thp_faults_total", []lbl{{"outcome", "huge"}}, float64(hugeFaults))
	p.sample("vm_thp_faults_total", []lbl{{"outcome", "fallback"}}, float64(fallbacks))
	p.family("vm_thp_collapses_total", "counter", "Collapse attempts (background scanner and explicit CollapseRange) by outcome.")
	p.sample("vm_thp_collapses_total", []lbl{{"outcome", "promoted"}}, float64(collapses))
	p.sample("vm_thp_collapses_total", []lbl{{"outcome", "aborted"}}, float64(collapseFails))
	p.family("vm_thp_splits_total", "counter", "Huge entries demoted to base pages in place.")
	p.sample("vm_thp_splits_total", nil, float64(splits))
	p.family("vm_thp_zaps_total", "counter", "Huge entries unmapped whole.")
	p.sample("vm_thp_zaps_total", nil, float64(zaps))
	p.family("vm_thp_anon_huge_pages", "gauge", "Base pages currently mapped by live huge entries.")
	p.sample("vm_thp_anon_huge_pages", nil, float64(anonHuge*hugePages))
}

func writeTenantMetrics(p *promWriter, sn machine.Snapshot) {
	if len(sn.Tenants) == 0 {
		return
	}
	p.family("vm_tenant_frames", "gauge", "Per-tenant frame accounting by state (limit 0 = unlimited).")
	p.family("vm_tenant_faults_total", "counter", "Per-tenant page faults, member closes included.")
	// The account families exist only while at least one tenant is
	// limited — an empty family is an exposition error.
	hasAccount := false
	for _, ts := range sn.Tenants {
		if ts.Account != nil {
			hasAccount = true
			break
		}
	}
	if hasAccount {
		p.family("vm_tenant_limit_hits_total", "counter", "Per-tenant charge attempts that hit the limit.")
		p.family("vm_tenant_evictions_total", "counter", "Per-tenant pages evicted from the tenant's account.")
		p.family("vm_tenant_evictions_under_limit_total", "counter", "Per-tenant pages evicted while under limit (cross-tenant interference).")
	}
	p.family("vm_tenant_fault_latency_ns", "summary", "Per-tenant page-fault latency.")
	for _, ts := range sn.Tenants {
		tl := []lbl{{"tenant", ts.Name}}
		p.sample("vm_tenant_faults_total", tl, float64(ts.Fault.Count))
		if ts.Account != nil {
			a := ts.Account
			p.sample("vm_tenant_frames", append(tl[:1:1], lbl{"state", "limit"}), float64(a.Limit))
			p.sample("vm_tenant_frames", append(tl[:1:1], lbl{"state", "charged"}), float64(a.Charged))
			p.sample("vm_tenant_frames", append(tl[:1:1], lbl{"state", "max_charged"}), float64(a.MaxCharged))
			p.sample("vm_tenant_limit_hits_total", tl, float64(a.LimitHits))
			p.sample("vm_tenant_evictions_total", tl, float64(a.Evictions))
			p.sample("vm_tenant_evictions_under_limit_total", tl, float64(a.EvictionsUnderLimit))
		} else {
			p.sample("vm_tenant_frames", append(tl[:1:1], lbl{"state", "limit"}), float64(ts.Limit))
		}
		p.summarySeries("vm_tenant_fault_latency_ns", tl,
			statsLatency{int64(ts.Fault.Count), ts.Fault.P50Ns, ts.Fault.P99Ns, ts.Fault.P999Ns})
	}
}

func writeContentionMetrics(p *promWriter) {
	top := contention.Top(contentionTopN)
	if len(top) == 0 {
		return
	}
	p.family("vm_contention_wait_ns_total", "counter", "Cumulative contended-wait time by site (top sites only).")
	p.family("vm_contention_waits_total", "counter", "Contended acquisitions by site (top sites only).")
	p.family("vm_contention_wait_max_ns", "gauge", "Worst single wait by site (top sites only).")
	// Deterministic sample order within the scrape: the snapshot is
	// already sorted by cumulative wait; re-sort ties by range.
	sort.SliceStable(top, func(i, j int) bool {
		if top[i].TotalWaitNs != top[j].TotalWaitNs {
			return top[i].TotalWaitNs > top[j].TotalWaitNs
		}
		return top[i].Lo < top[j].Lo
	})
	for _, s := range top {
		labels := []lbl{{"site", s.Site}}
		if s.Lo != 0 || s.Hi != 0 {
			labels = append(labels, lbl{"range", fmt.Sprintf("0x%x-0x%x", s.Lo, s.Hi)})
		}
		p.sample("vm_contention_wait_ns_total", labels, float64(s.TotalWaitNs))
		p.sample("vm_contention_waits_total", labels, float64(s.Waits))
		p.sample("vm_contention_wait_max_ns", labels, float64(s.MaxWaitNs))
	}
}
