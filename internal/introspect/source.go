// Package introspect is the live half of the observability story: an
// embeddable HTTP server exposing the machine while it runs — /metrics
// in Prometheus text exposition format, procfs-style plain-text views
// (/proc/meminfo, /proc/<tenant>/smaps, /proc/locks, /proc/rcu), and
// the lock-contention attribution profiler at /debug/contention — plus
// the snapshot-delta engine cmd/soak's vmstat line and cmd/vmtop share.
//
// Every inspection path takes only read-side or already-existing
// locks: RCU read sections and lock-free PTE walks for smaps, the
// whole-space range lock (or the mmap_sem read side) for the region
// list, each manager's own mutex for the lock table, and the machine's
// tenant mutexes for the rollup. Nothing here introduces a lock level
// above the reclaim scan lock, so an operator scraping a wedged
// machine cannot deadlock against the paths being diagnosed. With no
// server attached the whole plane is disarmed: the only residue on hot
// paths is the contention profiler's one atomic load, and that sits on
// already-contended slow paths only.
package introspect

import (
	"sync"

	"bonsai/internal/machine"
	"bonsai/internal/physmem"
	"bonsai/internal/rcu"
	"bonsai/internal/stats"
	"bonsai/internal/vm"
)

// TenantSpaces is one tenant's name, limit, and live member spaces —
// the per-tenant detail the procfs views walk (the snapshot alone
// carries counters, not address spaces).
type TenantSpaces struct {
	Name   string
	Limit  int64
	Spaces []*vm.AddressSpace
}

// Source is the world an introspection server reports on. Machine
// adapts machine.Machine; SpaceSet adapts drivers that build address
// spaces directly with vm.New (vmstress, torture).
type Source interface {
	// Label names the source on the index page and in the instance
	// metric.
	Label() string
	// Snapshot returns the machine-wide rollup.
	Snapshot() machine.Snapshot
	// Tenants returns the live tenants and their member spaces.
	Tenants() []TenantSpaces
	// Allocator exposes the frame pool for the meminfo watermarks; may
	// return nil when the source is currently empty.
	Allocator() *physmem.Allocator
	// Domain exposes the RCU domain for /proc/rcu; may return nil when
	// the source is currently empty.
	Domain() *rcu.Domain
}

// Machine adapts a machine.Machine as a Source.
func Machine(m *machine.Machine, label string) Source {
	return machineSource{m: m, label: label}
}

type machineSource struct {
	m     *machine.Machine
	label string
}

func (s machineSource) Label() string              { return s.label }
func (s machineSource) Snapshot() machine.Snapshot { return s.m.Snapshot() }
func (s machineSource) Allocator() *physmem.Allocator {
	return s.m.Host().Allocator()
}
func (s machineSource) Domain() *rcu.Domain { return s.m.Host().Domain() }

func (s machineSource) Tenants() []TenantSpaces {
	ts := s.m.Tenants()
	out := make([]TenantSpaces, 0, len(ts))
	for _, t := range ts {
		out = append(out, TenantSpaces{Name: t.Name(), Limit: t.Limit(), Spaces: t.Spaces()})
	}
	return out
}

// SpaceSet is a mutable Source over named vm.AddressSpaces, for
// drivers without a machine.Machine: each registered space reports as
// one unlimited tenant, and the machine-wide sections come from the
// registered spaces' shared state. Add and the returned remove func
// are safe for concurrent use with a serving server.
type SpaceSet struct {
	label string

	mu     sync.Mutex
	seq    int
	names  []string // registration order
	spaces map[string]*vm.AddressSpace
}

// NewSpaceSet returns an empty SpaceSet.
func NewSpaceSet(label string) *SpaceSet {
	return &SpaceSet{label: label, spaces: make(map[string]*vm.AddressSpace)}
}

// Add registers a space under name (deduplicated with a sequence
// number) and returns its remove func. Call remove before closing the
// space so no in-flight scrape walks a tearing-down world.
func (s *SpaceSet) Add(name string, as *vm.AddressSpace) (remove func()) {
	s.mu.Lock()
	s.seq++
	key := name
	if _, dup := s.spaces[key]; dup || key == "" {
		key = name + "#" + itoa(s.seq)
	}
	s.spaces[key] = as
	s.names = append(s.names, key)
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.spaces, key)
		for i, n := range s.names {
			if n == key {
				s.names = append(s.names[:i], s.names[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (s *SpaceSet) Label() string { return s.label }

// live returns the registered (name, space) pairs in arrival order.
func (s *SpaceSet) live() []TenantSpaces {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSpaces, 0, len(s.names))
	for _, n := range s.names {
		if as, ok := s.spaces[n]; ok {
			out = append(out, TenantSpaces{Name: n, Spaces: []*vm.AddressSpace{as}})
		}
	}
	return out
}

func (s *SpaceSet) Tenants() []TenantSpaces { return s.live() }

func (s *SpaceSet) Allocator() *physmem.Allocator {
	for _, t := range s.live() {
		return t.Spaces[0].Allocator()
	}
	return nil
}

func (s *SpaceSet) Domain() *rcu.Domain {
	for _, t := range s.live() {
		return t.Spaces[0].Domain()
	}
	return nil
}

// Snapshot synthesizes a machine.Snapshot-shaped rollup from the
// registered spaces. Counts can regress across scrapes when spaces
// are removed (an epoch teardown forgets its samples) — unlike the
// machine source, whose counters are monotonic; the delta engine and
// the exposition checker treat SpaceSet-backed counters accordingly.
func (s *SpaceSet) Snapshot() machine.Snapshot {
	live := s.live()
	var sn machine.Snapshot
	var fault, mapOp, rangeWait stats.LatencyHist
	for _, t := range live {
		as := t.Spaces[0]
		ts := machine.TenantSnapshot{Name: t.Name, Space: as.Stats()}
		fault.Merge(as.FaultHist())
		mapOp.Merge(as.MapHist())
		if rw := as.RangeWaitHist(); rw != nil {
			rangeWait.Merge(rw)
		}
		ts.Fault = as.FaultHist().Stats()
		sn.OOMKills += ts.Space.OOMKills
		sn.Tenants = append(sn.Tenants, ts)
	}
	sn.Latency.Fault = fault.Stats()
	sn.Latency.MapOp = mapOp.Stats()
	sn.Latency.RangeWait = rangeWait.Stats()
	if len(live) > 0 {
		as := live[0].Spaces[0]
		alloc := as.Allocator()
		sn.FramesTotal = alloc.NumFrames()
		sn.FramesInUse = alloc.InUse()
		sn.Reclaim = as.ReclaimStats()
		sn.Latency.GP = as.Domain().GPHist().Stats()
		sn.Latency.ReclaimScan = sn.Reclaim.Scan
	}
	return sn
}
