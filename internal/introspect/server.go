package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"bonsai/internal/contention"
	"bonsai/internal/machine"
)

// Server is the embeddable introspection endpoint. Start binds and
// serves immediately; Close stops listening and waits for in-flight
// handlers. Starting a server arms the lock-contention profiler and
// Close disarms it, so a machine with no scraper attached pays nothing
// on the fault path.
type Server struct {
	src Source
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// Start serves the introspection plane for src on addr (host:port;
// ":0" picks a free port — read it back from Addr).
func Start(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s := &Server{src: src, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/proc/meminfo", s.handleMeminfo)
	mux.HandleFunc("/proc/locks", s.handleLocks)
	mux.HandleFunc("/proc/rcu", s.handleRCU)
	mux.HandleFunc("/proc/", s.handleSmaps)
	mux.HandleFunc("/debug/contention", s.handleContention)
	mux.HandleFunc("/snapshot.json", s.handleSnapshot)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	contention.Arm()
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:6060".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disarms the contention profiler.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	contention.Disarm()
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "bonsai introspection: %s\n\n", s.src.Label())
	fmt.Fprint(w, `endpoints:
  /metrics            Prometheus text exposition
  /proc/meminfo       frame pool + per-tenant accounting
  /proc/locks         live range-lock holders and waiters
  /proc/rcu           RCU domain counters and shard backlogs
  /proc/<tenant>/smaps  per-VMA residency for one tenant
  /debug/contention   top lock-contention sites (?format=json)
  /snapshot.json      machine snapshot + contention, for vmtop
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteMetrics(w, s.src); err != nil {
		// Headers are gone; nothing useful to do but note it.
		return
	}
}

func (s *Server) handleMeminfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = WriteMeminfo(w, s.src)
}

func (s *Server) handleLocks(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = WriteLocks(w, s.src)
}

func (s *Server) handleRCU(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = WriteRCU(w, s.src)
}

// handleSmaps serves /proc/<tenant>/smaps.
func (s *Server) handleSmaps(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/proc/")
	name, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "smaps" || name == "" {
		http.NotFound(w, r)
		return
	}
	for _, t := range s.src.Tenants() {
		if t.Name == name {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteSmaps(w, t)
			return
		}
	}
	http.Error(w, fmt.Sprintf("no such tenant: %s", name), http.StatusNotFound)
}

func (s *Server) handleContention(w http.ResponseWriter, r *http.Request) {
	sites := contention.Top(contentionTopN)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sites)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = WriteContention(w, sites)
}

// SnapshotJSON is the /snapshot.json document — the machine rollup
// plus the contention top list, everything vmtop needs in one scrape.
type SnapshotJSON struct {
	Label      string                 `json:"label"`
	Snapshot   machine.Snapshot       `json:"snapshot"`
	Contention []contention.SiteStats `json:"contention,omitempty"`
	Dropped    uint64                 `json:"contention_dropped,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	doc := SnapshotJSON{
		Label:      s.src.Label(),
		Snapshot:   s.src.Snapshot(),
		Contention: contention.Top(contentionTopN),
		Dropped:    contention.Dropped(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}
