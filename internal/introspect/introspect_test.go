package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bonsai/internal/contention"
	"bonsai/internal/fail"
	"bonsai/internal/machine"
	"bonsai/internal/stats"
	"bonsai/internal/vm"
	"bonsai/internal/vma"
)

func testMachine(t *testing.T, design vm.Design, frames uint64) *machine.Machine {
	t.Helper()
	m := machine.New(machine.Config{
		VM:         vm.Config{Design: design, CPUs: 2, Frames: frames},
		MaxTenants: 8,
	})
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// populate admits a tenant, maps pages anon RW pages, and write-faults
// them all.
func populate(t *testing.T, m *machine.Machine, name string, limit int64, pages uint64) (*machine.Tenant, uint64) {
	t.Helper()
	tn, err := m.Admit(name, limit)
	if err != nil {
		t.Fatal(err)
	}
	as := tn.Root()
	base, err := as.Mmap(0, pages*vm.PageSize, vma.ProtRead|vma.ProtWrite, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := as.NewCPU(0)
	for p := uint64(0); p < pages; p++ {
		if err := cpu.Fault(base+p*vm.PageSize, true); err != nil {
			t.Fatalf("fault: %v", err)
		}
	}
	return tn, base
}

func startServer(t *testing.T, src Source) *Server {
	t.Helper()
	srv, err := Start("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func scrape(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition is satellite 3's validity half: a live scrape
// parses under the strict checker (which enforces single HELP/TYPE,
// _total discipline, and duplicate detection) and carries the
// per-tenant and latency series the issue names.
func TestMetricsExposition(t *testing.T) {
	m := testMachine(t, vm.PureRCU, 4096)
	populate(t, m, "alpha", 256, 64)
	populate(t, m, "beta", 0, 32)
	srv := startServer(t, Machine(m, "test"))

	code, body := scrape(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	fams, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	tf, ok := byName["vm_tenant_faults_total"]
	if !ok {
		t.Fatal("vm_tenant_faults_total missing")
	}
	if tf.Type != "counter" {
		t.Fatalf("vm_tenant_faults_total type = %s", tf.Type)
	}
	seen := map[string]float64{}
	for _, s := range tf.Samples {
		seen[s.Labels["tenant"]] = s.Value
	}
	if seen["alpha"] < 64 || seen["beta"] < 32 {
		t.Fatalf("per-tenant fault counts wrong: %v", seen)
	}
	fl, ok := byName["vm_fault_latency_ns"]
	if !ok || fl.Type != "summary" {
		t.Fatalf("vm_fault_latency_ns missing or wrong type (%v)", fl.Type)
	}
	quantiles := map[string]bool{}
	var count float64
	for _, s := range fl.Samples {
		if s.Name == "vm_fault_latency_ns_count" {
			count = s.Value
		} else {
			quantiles[s.Labels["quantile"]] = true
		}
	}
	for _, q := range []string{"0.5", "0.99", "0.999"} {
		if !quantiles[q] {
			t.Fatalf("missing quantile %s (have %v)", q, quantiles)
		}
	}
	if count < 96 {
		t.Fatalf("fault summary count = %v, want >= 96", count)
	}
	for _, name := range []string{"vm_pool_frames", "vm_tenant_frames", "vm_rcu_grace_periods_total", "vm_oom_kills_total"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("family %s missing", name)
		}
	}
}

// TestMetricsMonotonicUnderLoad is satellite 3's other half: two
// scrapes bracketing concurrent load — including a tenant eviction,
// the historical counter-regression trap — stay monotonic.
func TestMetricsMonotonicUnderLoad(t *testing.T) {
	m := testMachine(t, vm.Hybrid, 4096)
	populate(t, m, "steady", 256, 64)
	doomed, _ := populate(t, m, "doomed", 128, 48)
	srv := startServer(t, Machine(m, "test"))

	_, body1 := scrape(t, srv, "/metrics")
	prev, err := ParseExposition(body1)
	if err != nil {
		t.Fatalf("scrape 1: %v", err)
	}

	// Load between scrapes: more faults on a new tenant, then evict the
	// doomed tenant so its samples must fold into the departed
	// accumulators rather than vanish from the machine totals.
	populate(t, m, "churn", 0, 32)
	if err := doomed.Evict(); err != nil {
		t.Fatal(err)
	}

	_, body2 := scrape(t, srv, "/metrics")
	cur, err := ParseExposition(body2)
	if err != nil {
		t.Fatalf("scrape 2: %v", err)
	}
	if err := CheckMonotonic(prev, cur); err != nil {
		t.Fatalf("monotonicity: %v", err)
	}
}

// TestMeminfo checks the /proc/meminfo shape: machine totals first,
// then one block per tenant with limits and RSS.
func TestMeminfo(t *testing.T) {
	m := testMachine(t, vm.PureRCU, 2048)
	populate(t, m, "alpha", 256, 64)
	srv := startServer(t, Machine(m, "test"))
	code, body := scrape(t, srv, "/proc/meminfo")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"MemTotal:", "MemFree:", "WatermarkLow:", "Tenant: alpha", "Limit:", "RSS:"} {
		if !strings.Contains(body, want) {
			t.Fatalf("meminfo missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "2048") {
		t.Fatalf("meminfo does not report the 2048-frame pool:\n%s", body)
	}
}

// TestLocksLiveHolder is the issue's acceptance criterion: during an
// induced long-held range operation, /proc/locks shows the live
// holder. The tlb.flush-delay failpoint stretches a MadviseDontNeed's
// shootdown while it holds the range lock.
func TestLocksLiveHolder(t *testing.T) {
	m := testMachine(t, vm.PureRCU, 4096)
	tn, base := populate(t, m, "alpha", 0, 256)
	srv := startServer(t, Machine(m, "test"))

	// Each madvise pays one gather flush inside its range guard; the
	// armed delay stretches that hold window so a scrape can land in it.
	if err := fail.Enable(1, "tlb.flush-delay", fail.Config{OneIn: 1, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer fail.Disable("tlb.flush-delay")

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if err := tn.Root().MadviseDontNeed(base, 256*vm.PageSize); err != nil {
				done <- err
				return
			}
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	sawHeld := false
	for !sawHeld {
		if time.Now().After(deadline) {
			close(stop)
			<-done
			t.Fatal("never saw a HELD guard in /proc/locks")
		}
		_, body := scrape(t, srv, "/proc/locks")
		if strings.Contains(body, "HELD") {
			sawHeld = true
			if !strings.Contains(body, "alpha") {
				t.Fatalf("holder not attributed to tenant:\n%s", body)
			}
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("madvise: %v", err)
	}
}

// TestSmaps checks /proc/<tenant>/smaps: per-VMA extents with RSS and
// the private/shared split, and a 404 for unknown tenants.
func TestSmaps(t *testing.T) {
	m := testMachine(t, vm.Hybrid, 2048)
	tn, err := m.Admit("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	as := tn.Root()
	cpu := as.NewCPU(0)
	anon, err := as.Mmap(0, 32*vm.PageSize, vma.ProtRead|vma.ProtWrite, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 16; p++ {
		if err := cpu.Fault(anon+p*vm.PageSize, true); err != nil {
			t.Fatal(err)
		}
	}
	file := vma.NewFile("data.bin", 16)
	shared, err := as.Mmap(0, 16*vm.PageSize, vma.ProtRead|vma.ProtWrite, vma.Shared, file, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		if err := cpu.Fault(shared+p*vm.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	srv := startServer(t, Machine(m, "test"))
	code, body := scrape(t, srv, "/proc/alpha/smaps")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	for _, want := range []string{"[anon]", "data.bin", "Rss:", "Private:", "Shared:", "Dirty:"} {
		if !strings.Contains(body, want) {
			t.Fatalf("smaps missing %q:\n%s", want, body)
		}
	}
	if code, _ := scrape(t, srv, "/proc/nosuch/smaps"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant gave %d, want 404", code)
	}
}

// TestContentionEndpoint: the server arms the profiler on Start, the
// endpoint reports sites in both renderings, and Close disarms.
func TestContentionEndpoint(t *testing.T) {
	if contention.Armed() {
		t.Fatal("profiler armed before any server started")
	}
	m := testMachine(t, vm.PureRCU, 1024)
	populate(t, m, "alpha", 0, 8)
	srv := startServer(t, Machine(m, "test"))
	if !contention.Armed() {
		t.Fatal("Start did not arm the contention profiler")
	}
	contention.Note("test.site", 0x1000, 0x2000, 3*time.Millisecond)
	contention.Note("test.site", 0x1000, 0x2000, time.Millisecond)

	code, body := scrape(t, srv, "/debug/contention?format=json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var sites []contention.SiteStats
	if err := json.Unmarshal([]byte(body), &sites); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	found := false
	for _, s := range sites {
		if s.Site == "test.site" && s.Waits == 2 && s.TotalWaitNs >= int64(4*time.Millisecond) {
			found = true
		}
	}
	if !found {
		t.Fatalf("test.site not in contention report: %+v", sites)
	}
	_, text := scrape(t, srv, "/debug/contention")
	if !strings.Contains(text, "test.site") {
		t.Fatalf("text rendering missing site:\n%s", text)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if contention.Armed() {
		t.Fatal("Close did not disarm the contention profiler")
	}
}

// TestRangeContentionAttribution drives real overlapping map
// operations and checks the ranges wiring lands per-range "range"
// sites in the profiler.
func TestRangeContentionAttribution(t *testing.T) {
	m := testMachine(t, vm.PureRCU, 4096)
	tn, base := populate(t, m, "alpha", 0, 64)
	srv := startServer(t, Machine(m, "test"))
	defer srv.Close()
	as := tn.Root()

	// Stretch each madvise's critical section so the overlapping
	// goroutines actually queue on the range lock.
	if err := fail.Enable(2, "tlb.flush-delay", fail.Config{OneIn: 1, Delay: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	defer fail.Disable("tlb.flush-delay")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = as.MadviseDontNeed(base, 64*vm.PageSize)
			}
		}()
	}
	wg.Wait()
	sites := contention.Snapshot()
	for _, s := range sites {
		if s.Site == "range" {
			return
		}
	}
	t.Fatalf("no range-lock contention attributed after overlapping madvise storm: %+v", sites)
}

// TestRCUView sanity-checks /proc/rcu renders the shard backlog table.
func TestRCUView(t *testing.T) {
	m := testMachine(t, vm.PureRCU, 1024)
	populate(t, m, "alpha", 0, 16)
	srv := startServer(t, Machine(m, "test"))
	_, body := scrape(t, srv, "/proc/rcu")
	for _, want := range []string{"GracePeriods:", "Readers:", "shard"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/proc/rcu missing %q:\n%s", want, body)
		}
	}
}

// TestSnapshotJSON checks the vmtop document: label, snapshot with
// tenants, and contention list decode round-trip.
func TestSnapshotJSON(t *testing.T) {
	m := testMachine(t, vm.Hybrid, 2048)
	populate(t, m, "alpha", 128, 32)
	srv := startServer(t, Machine(m, "soak"))
	_, body := scrape(t, srv, "/snapshot.json")
	var doc SnapshotJSON
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if doc.Label != "soak" {
		t.Fatalf("label = %q", doc.Label)
	}
	if len(doc.Snapshot.Tenants) != 1 || doc.Snapshot.Tenants[0].Name != "alpha" {
		t.Fatalf("tenants = %+v", doc.Snapshot.Tenants)
	}
	if doc.Snapshot.Tenants[0].Fault.Count < 32 {
		t.Fatalf("tenant fault count = %d, want >= 32", doc.Snapshot.Tenants[0].Fault.Count)
	}
}

// TestDeltaEngine: interval deltas across machine snapshots, including
// a tenant appearing and departing between steps.
func TestDeltaEngine(t *testing.T) {
	mk := func(faults, gps uint64, tenants ...machine.TenantSnapshot) machine.Snapshot {
		var sn machine.Snapshot
		sn.Latency.Fault = stats.LatencyStats{Count: faults}
		sn.Latency.GP = stats.LatencyStats{Count: gps}
		sn.Tenants = tenants
		return sn
	}
	tsn := func(name string, faults uint64) machine.TenantSnapshot {
		return machine.TenantSnapshot{Name: name, Fault: stats.LatencyStats{Count: faults}}
	}
	var e DeltaEngine
	d := e.Step(mk(100, 5, tsn("a", 100)))
	if !d.First || d.Faults != 0 {
		t.Fatalf("first step: %+v", d)
	}
	d = e.Step(mk(250, 8, tsn("a", 180), tsn("b", 70)))
	if d.First || d.Faults != 150 || d.GracePeriods != 3 {
		t.Fatalf("second step: %+v", d)
	}
	if len(d.Tenants) != 2 || d.Tenants[0].Faults != 80 || d.Tenants[1].Faults != 70 {
		t.Fatalf("tenant deltas: %+v", d.Tenants)
	}
	// b departs: machine counters keep counting (departed accumulators),
	// b's series just disappears.
	d = e.Step(mk(260, 8, tsn("a", 190)))
	if d.Faults != 10 || len(d.Tenants) != 1 || d.Tenants[0].Faults != 10 {
		t.Fatalf("third step: %+v", d)
	}
}

// TestSpaceSetSource: the non-machine adapter produces a parseable
// exposition and tracks add/remove.
func TestSpaceSetSource(t *testing.T) {
	set := NewSpaceSet("stress")
	as, err := vm.New(vm.Config{Design: vm.PureRCU, CPUs: 2, Frames: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	remove := set.Add("w0", as)
	base, err := as.Mmap(0, 16*vm.PageSize, vma.ProtRead|vma.ProtWrite, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := as.NewCPU(0)
	for p := uint64(0); p < 16; p++ {
		if err := cpu.Fault(base+p*vm.PageSize, true); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := WriteMetrics(&b, set); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatalf("spaceset exposition invalid: %v\n%s", err, b.String())
	}
	var faults float64
	for _, f := range fams {
		if f.Name == "vm_tenant_faults_total" {
			for _, s := range f.Samples {
				if s.Labels["tenant"] == "w0" {
					faults = s.Value
				}
			}
		}
	}
	if faults < 16 {
		t.Fatalf("spaceset tenant faults = %v, want >= 16", faults)
	}
	remove()
	if got := len(set.Tenants()); got != 0 {
		t.Fatalf("tenants after remove = %d", got)
	}
}

// TestParseExpositionRejects: the checker actually rejects the failure
// modes it claims to (duplicate families, counter naming, duplicate
// samples, undeclared families, regressions).
func TestParseExpositionRejects(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"duplicate TYPE", "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n"},
		{"counter without _total", "# TYPE x counter\nx 1\n"},
		{"gauge with _total", "# TYPE x_total gauge\nx_total 1\n"},
		{"undeclared family", "y 1\n"},
		{"duplicate sample", "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n"},
		{"bad value", "# TYPE x gauge\nx nope\n"},
		{"empty family", "# TYPE x gauge\n"},
	}
	for _, c := range cases {
		if _, err := ParseExposition(c.doc); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
	prev, err := ParseExposition("# TYPE x_total counter\nx_total 5\n")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseExposition("# TYPE x_total counter\nx_total 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotonic(prev, cur); err == nil {
		t.Fatal("regression not detected")
	}
	if err := CheckMonotonic(prev, prev); err != nil {
		t.Fatalf("flat counters flagged: %v", err)
	}
}
