package rcu_test

import (
	"fmt"
	"sync/atomic"

	"bonsai/internal/rcu"
)

// The classic RCU pattern: a reader traverses a published structure
// with no locks; the writer replaces it and defers reclamation until a
// grace period guarantees no reader can still hold the old version.
func ExampleDomain() {
	dom := rcu.NewDomain(rcu.Options{BatchSize: -1})
	reader := dom.Register()

	type config struct{ limit int }
	var current atomic.Pointer[config]
	current.Store(&config{limit: 10})

	// Read side: no locks, one pointer load.
	reader.Lock()
	c := current.Load()
	fmt.Println("reader sees limit", c.limit)
	reader.Unlock()

	// Write side: publish a replacement, delay-free the old one.
	old := current.Swap(&config{limit: 20})
	dom.Defer(func() { fmt.Println("reclaimed config with limit", old.limit) })

	dom.Barrier() // wait one grace period and run callbacks
	// Output:
	// reader sees limit 10
	// reclaimed config with limit 10
}
