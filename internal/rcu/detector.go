package rcu

import "time"

// drainInterval is how often the detector re-checks for pending
// callbacks while work is flowing. Threshold crossings wake it
// immediately; the timer bounds how long a trickle of retires below
// the batch threshold can sit queued.
const drainInterval = time.Millisecond

// idleInterval is the re-check cadence after several empty passes, so
// an idle domain's detector costs next to nothing but still notices a
// below-threshold trickle promptly.
const idleInterval = 20 * time.Millisecond

// detector is the background grace-period goroutine, the analogue of
// the kernel's softirq processing of call_rcu callbacks. It sleeps
// until woken (a shard crossed its batch threshold or backpressure
// budget) or until its re-check timer fires, then runs one grace
// period and drains every expired segment. All blocking happens here,
// never on a retiring caller's path.
func (d *Domain) detector() {
	defer close(d.exited)
	timer := time.NewTimer(drainInterval)
	defer timer.Stop()
	idle := 0
	for {
		select {
		case <-d.stopc:
			// Final flush happens in Close after the detector exits (a
			// grace period there needs no cooperation from this loop).
			return
		case <-d.wake:
			idle = 0
		case <-timer.C:
		}
		// Coalesce any extra nudges that arrived while we were draining.
		select {
		case <-d.wake:
		default:
		}

		if d.pendingTotal() > 0 {
			d.gpMu.Lock()
			d.gracePeriodLocked()
			d.gpMu.Unlock()
			idle = 0
		} else if idle < 8 {
			idle++
		}

		// Re-arm: callbacks queued during the grace period, or trickling
		// in below the wake threshold, are picked up on the next tick.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if idle >= 8 {
			timer.Reset(idleInterval)
		} else {
			timer.Reset(drainInterval)
		}
	}
}
