package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeferNeverBlocksOnGracePeriod is the regression test for the
// synchronous design's deadlock: with a reader pinned inside a critical
// section no grace period can complete, yet Defer must keep returning
// immediately no matter how far past the batch size and backpressure
// budget the queue grows. The old implementation ran Synchronize inline
// once the batch filled and hung exactly here.
func TestDeferNeverBlocksOnGracePeriod(t *testing.T) {
	d := NewDomain(Options{BatchSize: 4, MaxPending: 8})
	r := d.Register()

	r.Lock()
	const n = 10_000
	done := make(chan struct{})
	var ran atomic.Int64
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			d.Defer(func() { ran.Add(1) })
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Defer blocked with a reader active (grace-period wait on the caller's path)")
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d callbacks ran while the protecting reader was active", got)
	}
	if st := d.Stats(); st.OverBudget == 0 {
		t.Fatalf("backpressure budget never tripped: %+v", st)
	}
	r.Unlock()

	d.Flush()
	if got := ran.Load(); got != n {
		t.Fatalf("after Flush %d callbacks ran, want %d", got, n)
	}
	d.Close()
}

// TestBackgroundDrain verifies the detector reclaims on its own:
// callbacks run without any blocking call from the retiring side.
func TestBackgroundDrain(t *testing.T) {
	d := NewDomain(Options{BatchSize: 16})
	defer d.Close()
	var ran atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		d.Defer(func() { ran.Add(1) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("detector drained %d/%d callbacks without a Flush", ran.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if st := d.Stats(); st.GracePeriods == 0 {
		t.Fatalf("no grace periods recorded: %+v", st)
	}
}

// TestTrickleDrains verifies callbacks far below the wake threshold
// are still reclaimed by the detector's re-check timer: a handful of
// retired frames must not sit queued until the next batch or teardown.
func TestTrickleDrains(t *testing.T) {
	d := NewDomain(Options{}) // default batch: 3 callbacks never cross the threshold
	defer d.Close()
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		d.Defer(func() { ran.Add(1) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("trickle not drained: %d/3 ran, stats %+v", ran.Load(), d.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentDeferSynchronize races many retiring goroutines against
// Synchronize callers and cycling readers; run under -race in CI. Every
// callback must run exactly once and only after a grace period.
func TestConcurrentDeferSynchronize(t *testing.T) {
	d := NewDomain(Options{BatchSize: 32, Shards: 4})
	defer d.Close()

	const (
		writers      = 4
		perWriter    = 500
		synchronizer = 2
	)
	var ran atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer d.Unregister(r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				r.Unlock()
			}
		}()
	}
	var syncWG sync.WaitGroup
	for i := 0; i < synchronizer; i++ {
		syncWG.Add(1)
		go func() {
			defer syncWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Synchronize()
			}
		}()
	}
	var defWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		defWG.Add(1)
		go func() {
			defer defWG.Done()
			for j := 0; j < perWriter; j++ {
				d.Defer(func() { ran.Add(1) })
			}
		}()
	}
	defWG.Wait()
	d.Flush()
	if got := ran.Load(); got != writers*perWriter {
		t.Fatalf("ran %d callbacks, want %d", got, writers*perWriter)
	}
	close(stop)
	syncWG.Wait()
	wg.Wait()
}

// TestShardDistribution checks that explicit hints land on their shard
// and that automatic hints account for every callback.
func TestShardDistribution(t *testing.T) {
	d := NewDomain(Options{BatchSize: -1, Shards: 8})
	const perShard = 8
	for i := 0; i < 8*perShard; i++ {
		d.DeferOn(i%8, func() {})
	}
	st := d.Stats()
	if st.Shards != 8 {
		t.Fatalf("Shards = %d, want 8", st.Shards)
	}
	for i, q := range st.ShardQueued {
		if q != perShard {
			t.Fatalf("shard %d queued %d callbacks, want %d (%v)", i, q, perShard, st.ShardQueued)
		}
	}
	// Hints beyond the shard count wrap.
	d.DeferOn(8, func() {})
	if q := d.Stats().ShardQueued[0]; q != perShard+1 {
		t.Fatalf("wrapped hint landed wrong: shard 0 queued %d", q)
	}

	// Automatic hints: everything is accounted for, wherever it lands.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.Defer(func() {})
			}
		}()
	}
	wg.Wait()
	st = d.Stats()
	var sum uint64
	for _, q := range st.ShardQueued {
		sum += q
	}
	want := uint64(8*perShard + 1 + 400)
	if sum != want || st.Defers != want {
		t.Fatalf("queued sum = %d, Defers = %d, want %d", sum, st.Defers, want)
	}
	d.Flush()
	if st := d.Stats(); st.Ran != want || st.Pending != 0 {
		t.Fatalf("after Flush: %+v", st)
	}
}

// TestCloseFlushes verifies Close stops the detector and runs every
// remaining callback, and that late Defers are caught.
func TestCloseFlushes(t *testing.T) {
	d := NewDomain(Options{})
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		d.Defer(func() { ran.Add(1) })
	}
	d.Close()
	if got := ran.Load(); got != 10 {
		t.Fatalf("Close ran %d callbacks, want 10", got)
	}
	d.Close() // idempotent

	defer func() {
		if recover() == nil {
			t.Fatal("Defer on closed Domain did not panic")
		}
	}()
	d.Defer(func() {})
}

// TestGracePeriodLatencyStats checks the new observability counters.
func TestGracePeriodLatencyStats(t *testing.T) {
	d := NewDomain(Options{BatchSize: -1})
	r := d.Register()
	release := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		r.Lock()
		close(entered)
		<-release
		r.Unlock()
	}()
	<-entered
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	d.Defer(func() {})
	d.Flush()
	st := d.Stats()
	if st.GPLatencyMax < 2*time.Millisecond {
		t.Fatalf("GPLatencyMax = %v, want >= the reader's ~5ms dwell", st.GPLatencyMax)
	}
	if st.GPLatencyAvg <= 0 {
		t.Fatalf("GPLatencyAvg = %v", st.GPLatencyAvg)
	}
	var drains uint64
	for _, n := range st.ShardDrains {
		drains += n
	}
	if drains == 0 {
		t.Fatalf("no shard drains recorded: %+v", st)
	}
}
