package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSynchronizeWaitsForActiveReader(t *testing.T) {
	d := NewDomain(Options{})
	r := d.Register()

	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		r.Lock()
		close(entered)
		<-release
		r.Unlock()
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a pre-existing reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize never returned after reader exited")
	}
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	// A reader that starts after Synchronize begins must not block it.
	d := NewDomain(Options{})
	r := d.Register()

	syncStarted := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(syncStarted)
		d.Synchronize()
		close(done)
	}()
	<-syncStarted
	// This reader may start before or after the epoch advance; either
	// way Synchronize must complete while the reader stays in its
	// critical section *if* it started after the advance. To make the
	// test deterministic, wait for the epoch to move first.
	for d.epoch.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	r.Lock()
	defer r.Unlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize blocked on a reader that started after it")
	}
}

func TestDeferRunsAfterGracePeriod(t *testing.T) {
	d := NewDomain(Options{BatchSize: -1})
	r := d.Register()

	var freed atomic.Bool
	r.Lock()
	d.Defer(func() { freed.Store(true) })
	if freed.Load() {
		t.Fatal("callback ran before any grace period")
	}
	r.Unlock()
	d.Barrier()
	if !freed.Load() {
		t.Fatal("callback did not run after Barrier")
	}
}

func TestDeferredCallbackNeverRunsDuringProtectingReader(t *testing.T) {
	// The core RCU property: a callback queued while reader R is inside
	// a critical section must not run until R exits.
	d := NewDomain(Options{BatchSize: -1})
	r := d.Register()

	var readerInside atomic.Bool
	var violation atomic.Bool

	readerInside.Store(true)
	r.Lock()
	d.Defer(func() {
		if readerInside.Load() {
			violation.Store(true)
		}
	})

	done := make(chan struct{})
	go func() {
		d.Barrier()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	readerInside.Store(false)
	r.Unlock()
	<-done
	if violation.Load() {
		t.Fatal("deferred callback ran while the protecting reader was active")
	}
}

func TestNestedReadSections(t *testing.T) {
	d := NewDomain(Options{})
	r := d.Register()
	r.Lock()
	r.Lock()
	r.Unlock()
	if !r.Active() {
		t.Fatal("reader became quiescent while still nested")
	}
	r.Unlock()
	if r.Active() {
		t.Fatal("reader still active after outermost Unlock")
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock without Lock did not panic")
		}
	}()
	d := NewDomain(Options{})
	r := d.Register()
	r.Unlock()
}

func TestUnregisterActiveReaderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unregister of active reader did not panic")
		}
	}()
	d := NewDomain(Options{})
	r := d.Register()
	r.Lock()
	d.Unregister(r)
}

func TestUnregisterRemovesReader(t *testing.T) {
	d := NewDomain(Options{})
	r := d.Register()
	if d.Stats().Readers != 1 {
		t.Fatal("reader not registered")
	}
	d.Unregister(r)
	if d.Stats().Readers != 0 {
		t.Fatal("reader not unregistered")
	}
	// Synchronize must not wait on an unregistered reader.
	done := make(chan struct{})
	go func() { d.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Synchronize blocked on unregistered reader")
	}
}

func TestBatchDrain(t *testing.T) {
	// Crossing the batch threshold wakes the background detector, which
	// must drain every callback without any blocking call from here.
	d := NewDomain(Options{BatchSize: 8, Shards: 1})
	defer d.Close()
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		d.Defer(func() { ran.Add(1) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("detector drained %d callbacks, want 8", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStatsCounters(t *testing.T) {
	d := NewDomain(Options{BatchSize: -1})
	d.Defer(func() {})
	d.Defer(func() {})
	st := d.Stats()
	if st.Defers != 2 || st.Pending != 2 || st.Ran != 0 {
		t.Fatalf("stats before barrier = %+v", st)
	}
	d.Barrier()
	st = d.Stats()
	if st.Ran != 2 || st.Pending != 0 || st.GracePeriods == 0 {
		t.Fatalf("stats after barrier = %+v", st)
	}
}

func TestManyReadersStress(t *testing.T) {
	d := NewDomain(Options{BatchSize: 64})
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// A shared "object graph": writers retire objects and mark them dead
	// only after a grace period; readers must never observe a dead
	// object through the published pointer.
	type obj struct{ dead atomic.Bool }
	cur := atomic.Pointer[obj]{}
	cur.Store(&obj{})

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer d.Unregister(r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				o := cur.Load()
				if o.dead.Load() {
					t.Error("reader observed a reclaimed object")
					r.Unlock()
					return
				}
				r.Unlock()
			}
		}()
	}

	for i := 0; i < 300; i++ {
		old := cur.Swap(&obj{})
		d.Defer(func() { old.dead.Store(true) })
	}
	d.Barrier()
	close(stop)
	wg.Wait()
}
