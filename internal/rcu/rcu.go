// Package rcu implements an epoch-based read-copy-update runtime in the
// style of userspace RCU (liburcu) and the kernel RCU the paper builds
// on (§2). It provides:
//
//   - Registered readers with read-side critical sections that perform no
//     stores to shared cache lines beyond one padded per-reader slot
//     (mirroring the paper's requirement that page faults not contend on
//     shared lines).
//   - Defer (the analogue of call_rcu): run a callback after a grace
//     period, used to delay-free tree nodes, VMAs, page tables, and
//     physical frames (§5.2, Figure 11). Defer is asynchronous: it
//     appends to a per-shard callback segment and returns. It never
//     waits for a grace period and never takes a domain-global lock,
//     so retiring memory from the munmap path costs one padded
//     per-shard append — reclamation stays off the mutation hot path,
//     which is the paper's central scalability requirement.
//   - A background grace-period detector (the analogue of the kernel's
//     softirq callback processing): a goroutine that advances the
//     epoch, waits for pre-existing readers with exponential backoff
//     and parking, and drains expired callback segments.
//   - Synchronize (synchronize_rcu) and Flush/Barrier (rcu_barrier):
//     the only blocking entry points. Mutators that must observe
//     reclamation (teardown, leak checks, OOM recovery) call these;
//     nothing else blocks.
//
// Although Go's garbage collector already guarantees that memory is not
// recycled while a reader can still reach it, the VM system reuses
// *resources* — physical frames and page-table frames — through its own
// allocator. Returning those to the allocator before a grace period has
// elapsed is a real bug that this package's grace-period machinery
// prevents, exactly as in the kernel.
package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bonsai/internal/fail"
	"bonsai/internal/stats"
	"bonsai/internal/trace"
)

// failGPDelay stretches grace periods (armed only by fault injection;
// see internal/fail): every deferred free and zap retirement behind the
// stalled epoch backs up, the backlog the DeferOn backpressure path
// exists to absorb.
var failGPDelay = fail.NewPoint("rcu.gp-delay")

// cacheLine is the assumed cache-line size used to pad per-reader and
// per-shard state so concurrent CPUs never share a line (the property
// the paper's pure-RCU design depends on).
const cacheLine = 64

// Domain is an independent RCU domain: a set of registered readers plus
// sharded segments of deferred callbacks processed by a background
// grace-period detector. The zero value is not usable; call NewDomain.
type Domain struct {
	epoch atomic.Uint64 // current grace-period epoch; advanced per grace period

	readersMu sync.Mutex // guards the readers list only
	readers   []*Reader

	shards    []shard
	shardMask uint32

	// gpMu serializes grace-period execution between the detector and
	// the blocking entry points (Synchronize/Flush/Close). It is never
	// touched by Defer.
	gpMu sync.Mutex

	opts       Options
	wakeThresh int // per-shard pending count that wakes the detector
	budget     int // per-shard pending count considered over budget

	wake      chan struct{} // buffered(1) nudge to the detector
	stopc     chan struct{}
	startOnce sync.Once
	started   atomic.Bool
	exited    chan struct{}
	closed    atomic.Bool

	// hintPool hands out goroutine-affine shard hints; see hint().
	hintPool sync.Pool
	hintSeq  atomic.Uint32

	// statistics
	gpActive     atomic.Bool // a grace period is executing right now
	gracePeriods atomic.Uint64
	gpTotalNanos atomic.Uint64
	gpMaxNanos   atomic.Uint64
	pendingHW    atomic.Int64
	overBudget   atomic.Uint64

	// gpHist is the always-on grace-period latency histogram: the
	// reclamation-delay tail every deferred free rides on.
	gpHist stats.LatencyHist
}

// shard is one callback segment. Shards are padded so concurrent
// retiring goroutines touch disjoint cache lines; all hot counters are
// shard-local.
type shard struct {
	_       [cacheLine]byte
	mu      sync.Mutex
	cbs     []callback
	queued  atomic.Uint64 // callbacks ever appended to this shard
	drained atomic.Uint64 // callbacks run from this shard
	drains  atomic.Uint64 // drain passes that removed at least one callback
	_       [cacheLine]byte

	// spare is the previous drain pass's segment, recycled to keep the
	// steady-state append path allocation-free. Only the detector (or a
	// blocking entry point, under gpMu) touches it.
	spare []callback
}

// pending returns the shard's currently queued callback count.
func (s *shard) pending() int64 {
	return int64(s.queued.Load()) - int64(s.drained.Load())
}

type callback struct {
	epoch uint64 // epoch observed when the callback was queued
	fn    func()
}

// Options configures a Domain.
type Options struct {
	// BatchSize is the number of pending callbacks that accumulate
	// (domain-wide) before the background detector is woken to run a
	// grace period and drain, modeling the kernel's batched softirq
	// processing of call_rcu callbacks. Zero means DefaultBatchSize.
	// Negative disables the background detector entirely: callbacks
	// run only when the caller invokes Synchronize/Flush/Barrier,
	// which keeps reclamation deterministic for tests.
	BatchSize int

	// Shards is the number of callback segments, rounded up to a power
	// of two. Zero means a power of two covering GOMAXPROCS, capped at
	// MaxShards.
	Shards int

	// MaxPending is the backpressure budget. It is divided evenly
	// across the shards; when one shard's pending count exceeds its
	// slice (so a skewed retire pattern trips it sooner than a
	// perfectly spread one), Defer counts the event in
	// Stats.OverBudget, urgently wakes the detector, and yields its
	// timeslice so the detector can run on a saturated machine. Defer
	// still never waits for a grace period — with readers active there
	// is nothing useful a blocked writer could wait for (that inline
	// wait is exactly the deadlock the synchronous design had). Zero
	// means DefaultMaxPending.
	MaxPending int
}

// DefaultBatchSize is the automatic drain threshold used when
// Options.BatchSize is zero.
const DefaultBatchSize = 4096

// DefaultMaxPending is the default backpressure budget. It is sized so
// the yield-based safety valve only engages when reclamation has truly
// fallen behind (a wedged reader), not during ordinary bursts.
const DefaultMaxPending = 1 << 17

// MaxShards caps the shard count.
const MaxShards = 64

// NewDomain returns a ready-to-use RCU domain. Domains with a
// non-negative BatchSize lazily start one background detector goroutine
// on first Defer; call Close to stop it and flush remaining callbacks.
func NewDomain(opts Options) *Domain {
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultMaxPending
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	d := &Domain{
		opts:   opts,
		shards: make([]shard, shards),

		shardMask: uint32(shards - 1),
		wake:      make(chan struct{}, 1),
		stopc:     make(chan struct{}),
		exited:    make(chan struct{}),
	}
	if d.wakeThresh = opts.BatchSize / shards; d.wakeThresh < 1 {
		d.wakeThresh = 1
	}
	if d.budget = opts.MaxPending / shards; d.budget < 1 {
		d.budget = 1
	}
	d.hintPool.New = func() any {
		h := new(uint32)
		*h = d.hintSeq.Add(1) - 1
		return h
	}
	d.epoch.Store(1)
	return d
}

// Reader is a registered read-side context, analogous to a thread
// registered with urcu. A Reader must be used by one goroutine at a
// time. Read-side critical sections may nest.
type Reader struct {
	_     [cacheLine]byte
	state atomic.Uint64 // 0 = quiescent, else epoch at outermost Lock
	nest  int32         // nesting depth; accessed only by the owner
	_     [cacheLine]byte
	dom   *Domain
}

// Register creates and registers a new Reader with the domain.
func (d *Domain) Register() *Reader {
	r := &Reader{dom: d}
	d.readersMu.Lock()
	d.readers = append(d.readers, r)
	d.readersMu.Unlock()
	return r
}

// Unregister removes the reader from the domain. The reader must be
// quiescent (not inside a critical section).
func (d *Domain) Unregister(r *Reader) {
	if r.state.Load() != 0 {
		panic("rcu: Unregister of active reader")
	}
	d.readersMu.Lock()
	for i, rr := range d.readers {
		if rr == r {
			d.readers = append(d.readers[:i], d.readers[i+1:]...)
			break
		}
	}
	d.readersMu.Unlock()
}

// Lock enters a read-side critical section. It performs a single store
// to the reader's private padded slot; it never touches shared state.
func (r *Reader) Lock() {
	if r.nest == 0 {
		r.state.Store(r.dom.epoch.Load())
	}
	r.nest++
}

// Unlock leaves a read-side critical section.
func (r *Reader) Unlock() {
	r.nest--
	switch {
	case r.nest == 0:
		r.state.Store(0)
	case r.nest < 0:
		panic("rcu: Unlock without matching Lock")
	}
}

// Active reports whether the reader is inside a critical section. It is
// intended for assertions in tests.
func (r *Reader) Active() bool { return r.state.Load() != 0 }

// hint returns a goroutine-affine shard hint. Hints live in a
// sync.Pool, whose Get/Put fast path is per-P and lock-free, so
// concurrent Defer callers on different Ps spread across shards without
// sharing a cache line; the round-robin assignment counter is touched
// only when the pool is empty.
func (d *Domain) hint() int {
	h := d.hintPool.Get().(*uint32)
	i := *h
	d.hintPool.Put(h)
	return int(i)
}

// Defer queues fn to run after a grace period. It appends to one
// callback shard and returns: no domain-global lock, no grace-period
// wait, regardless of how many callbacks are pending. When a shard
// crosses the batch threshold the background detector is woken (a
// non-blocking notification) to process the grace period off the
// caller's path.
func (d *Domain) Defer(fn func()) { d.DeferOn(d.hint(), fn) }

// DeferOn is Defer with an explicit shard hint, for callers that
// already have a cheap CPU-like identity (the VM layer passes its
// per-CPU context id). Hints beyond the shard count wrap around.
func (d *Domain) DeferOn(hint int, fn func()) {
	if d.closed.Load() {
		panic("rcu: Defer on closed Domain")
	}
	s := &d.shards[uint32(hint)&d.shardMask]
	e := d.epoch.Load()
	s.mu.Lock()
	s.cbs = append(s.cbs, callback{epoch: e, fn: fn})
	s.queued.Add(1)
	s.mu.Unlock()
	n := s.pending()
	trace.Emit(trace.AuxCPU, trace.EvRCUDefer, e, uint64(uint32(hint)&d.shardMask), uint64(n))

	if d.opts.BatchSize < 0 {
		return // manual mode: drained only by Synchronize/Flush
	}
	switch {
	case n >= int64(d.budget):
		// Over the backpressure budget: reclamation has fallen behind.
		// Wake the detector urgently and donate this timeslice so it can
		// run even on a fully loaded machine. This bounds the backlog
		// without ever waiting for a grace period on the caller's path.
		d.overBudget.Add(1)
		d.ensureDetector()
		d.nudge()
		yield()
	case n >= int64(d.wakeThresh) || !d.started.Load():
		d.ensureDetector()
		d.nudge()
	}
}

// nudge wakes the detector without blocking.
func (d *Domain) nudge() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// ensureDetector starts the background grace-period detector once.
func (d *Domain) ensureDetector() {
	d.startOnce.Do(func() {
		d.started.Store(true)
		go d.detector()
	})
}

// Synchronize waits until every read-side critical section that was
// active when Synchronize was called has completed (a full grace
// period). Callbacks queued before the call are run before it returns.
// It is a blocking entry point: never call it while holding locks that
// an active reader may be waiting for.
func (d *Domain) Synchronize() {
	d.gpMu.Lock()
	defer d.gpMu.Unlock()
	d.gracePeriodLocked()
}

// Flush runs a grace period and then runs every callback queued before
// the call (the analogue of rcu_barrier). It is the one call mutators
// use when they must observe reclamation: address-space teardown, leak
// checks, and OOM recovery.
func (d *Domain) Flush() { d.Synchronize() }

// Barrier is an alias for Flush, kept for symmetry with rcu_barrier.
func (d *Domain) Barrier() { d.Flush() }

// Close stops the background detector (if it ever started) and flushes
// all remaining callbacks. The caller must quiesce all retiring paths
// first — a Defer racing Close may be silently dropped, exactly as a
// call_rcu racing module unload would be; the closed check is
// best-effort, so sequenced-after Defers panic. The blocking entry
// points keep working after Close (inline, on the caller). Close is
// idempotent.
func (d *Domain) Close() {
	if d.closed.Swap(true) {
		return
	}
	if d.started.Load() {
		close(d.stopc)
		<-d.exited
	}
	d.Flush()
}

// gracePeriodLocked advances the epoch, waits for pre-existing readers,
// and drains expired callbacks. Caller holds gpMu.
func (d *Domain) gracePeriodLocked() {
	d.gpActive.Store(true)
	defer d.gpActive.Store(false)
	start := time.Now()
	target := d.epoch.Add(1) // readers that observe >= target started after us
	gpID := d.gracePeriods.Add(1)
	trace.Emit(trace.AuxCPU, trace.EvGPStart, gpID, target, 0)
	if delay := failGPDelay.FireDelay(); delay > 0 {
		// Injected grace-period stall: the detector (or a synchronous
		// waiter) sits on the epoch while callbacks pile up behind it.
		time.Sleep(delay)
	}

	d.readersMu.Lock()
	readers := make([]*Reader, len(d.readers))
	copy(readers, d.readers)
	d.readersMu.Unlock()

	for _, r := range readers {
		waitQuiescent(r, target)
	}
	ran := d.drainAll(target)

	elapsed := time.Since(start)
	nanos := uint64(elapsed.Nanoseconds())
	d.gpTotalNanos.Add(nanos)
	for {
		max := d.gpMaxNanos.Load()
		if nanos <= max || d.gpMaxNanos.CompareAndSwap(max, nanos) {
			break
		}
	}
	d.gpHist.Record(elapsed)
	trace.Emit(trace.AuxCPU, trace.EvGPEnd, gpID, uint64(ran), nanos)
}

// waitQuiescent blocks until the reader is quiescent or started its
// current critical section at or after the target epoch. It spins
// briefly, then yields, then parks with exponential backoff — the
// detector can afford to sleep; readers never signal (signaling would
// put a shared store on the read path).
func waitQuiescent(r *Reader, target uint64) {
	sleep := time.Microsecond
	for i := 0; ; i++ {
		s := r.state.Load()
		if s == 0 || s >= target {
			return
		}
		switch {
		case i < 256:
			// spin: the reader is likely mid-critical-section
		case i < 512:
			yield()
		default:
			time.Sleep(sleep)
			if sleep < 128*time.Microsecond {
				sleep *= 2
			}
		}
	}
}

// drainAll runs all callbacks queued at an epoch strictly before
// target, returning how many ran. The grace period advancing the
// domain to target has already elapsed. Callbacks run outside the
// shard locks, so a callback may itself Defer.
func (d *Domain) drainAll(target uint64) int {
	var total int64
	for i := range d.shards {
		total += d.shards[i].pending()
	}
	d.noteHighWater(total)

	ranTotal := 0
	for i := range d.shards {
		s := &d.shards[i]
		// Swap the segment out under the lock, run callbacks outside it
		// (a callback may itself Defer into this shard). The swapped-out
		// array is recycled as the next segment so the steady state
		// allocates nothing.
		s.mu.Lock()
		old := s.cbs
		s.cbs = s.spare[:0]
		s.spare = nil
		s.mu.Unlock()

		ran := 0
		keep := old[:0] // compacts in place; only indices already read are rewritten
		for _, cb := range old {
			if cb.epoch < target {
				cb.fn()
				ran++
			} else {
				// Queued while this grace period was already underway
				// (epoch == target): not yet safe, hold for the next one.
				keep = append(keep, cb)
			}
		}
		s.mu.Lock()
		if len(keep) == 0 {
			clear(old[:cap(old)])
			s.spare = old[:0]
		} else {
			// Put survivors back in front of any new arrivals; the
			// arrivals' backing array is then free to recycle as the
			// next segment.
			arrivals := s.cbs
			s.cbs = append(keep, arrivals...)
			clear(arrivals[:cap(arrivals)])
			s.spare = arrivals[:0]
		}
		s.mu.Unlock()
		if ran > 0 {
			s.drained.Add(uint64(ran))
			s.drains.Add(1)
			ranTotal += ran
		}
	}
	return ranTotal
}

// noteHighWater records the largest pending-callback count ever
// observed (sampled at grace-period boundaries).
func (d *Domain) noteHighWater(total int64) {
	for {
		hw := d.pendingHW.Load()
		if total <= hw || d.pendingHW.CompareAndSwap(hw, total) {
			return
		}
	}
}

// pendingTotal sums the shards' pending callback counts.
func (d *Domain) pendingTotal() int64 {
	var total int64
	for i := range d.shards {
		total += d.shards[i].pending()
	}
	return total
}

// Stats is a snapshot of a domain's counters.
type Stats struct {
	GracePeriods uint64 // grace periods completed
	Defers       uint64 // callbacks queued via Defer/DeferOn
	Ran          uint64 // callbacks executed
	Pending      int    // callbacks still queued
	Readers      int    // registered readers
	Shards       int    // callback segments

	PendingHighWater int    // max pending sampled at grace-period boundaries
	OverBudget       uint64 // Defers that found their shard over the backpressure budget

	GPLatencyAvg time.Duration      // mean grace-period latency
	GPLatencyMax time.Duration      // worst grace-period latency
	GP           stats.LatencyStats // grace-period latency percentiles

	ShardQueued  []uint64 // per-shard callbacks ever queued
	ShardDrains  []uint64 // per-shard drain passes that removed callbacks
	ShardPending []int    // per-shard callbacks still queued (the backlog view)

	// GPInFlight reports whether a grace period was executing at
	// snapshot time — the live half of the GP latency story.
	GPInFlight bool
}

// GPHist exposes the grace-period latency histogram for machine-level
// latency rollups.
func (d *Domain) GPHist() *stats.LatencyHist { return &d.gpHist }

// Stats returns a snapshot of the domain's counters.
func (d *Domain) Stats() Stats {
	st := Stats{
		GracePeriods:     d.gracePeriods.Load(),
		Shards:           len(d.shards),
		PendingHighWater: int(d.pendingHW.Load()),
		OverBudget:       d.overBudget.Load(),
		GPLatencyMax:     time.Duration(d.gpMaxNanos.Load()),
		GP:               d.gpHist.Stats(),
		ShardQueued:      make([]uint64, len(d.shards)),
		ShardDrains:      make([]uint64, len(d.shards)),
		ShardPending:     make([]int, len(d.shards)),
		GPInFlight:       d.gpActive.Load(),
	}
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		q, n := s.queued.Load(), len(s.cbs)
		s.mu.Unlock()
		st.Defers += q
		st.Ran += s.drained.Load()
		st.Pending += n
		st.ShardQueued[i] = q
		st.ShardDrains[i] = s.drains.Load()
		st.ShardPending[i] = n
	}
	d.readersMu.Lock()
	st.Readers = len(d.readers)
	d.readersMu.Unlock()
	if st.GracePeriods > 0 {
		st.GPLatencyAvg = time.Duration(d.gpTotalNanos.Load() / st.GracePeriods)
	}
	return st
}
