// Package rcu implements an epoch-based read-copy-update runtime in the
// style of userspace RCU (liburcu) and the kernel RCU the paper builds
// on (§2). It provides:
//
//   - Registered readers with read-side critical sections that perform no
//     stores to shared cache lines beyond one padded per-reader slot
//     (mirroring the paper's requirement that page faults not contend on
//     shared lines).
//   - Defer (the analogue of call_rcu): run a callback after a grace
//     period, used to delay-free tree nodes, VMAs, page tables, and
//     physical frames (§5.2, Figure 11).
//   - Synchronize (synchronize_rcu): wait for a full grace period.
//
// Although Go's garbage collector already guarantees that memory is not
// recycled while a reader can still reach it, the VM system reuses
// *resources* — physical frames and page-table frames — through its own
// allocator. Returning those to the allocator before a grace period has
// elapsed is a real bug that this package's grace-period machinery
// prevents, exactly as in the kernel.
package rcu

import (
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed cache-line size used to pad per-reader state
// so concurrent readers never share a line (the property the paper's
// pure-RCU design depends on).
const cacheLine = 64

// Domain is an independent RCU domain: a set of registered readers plus
// a queue of deferred callbacks. The zero value is not usable; call
// NewDomain.
type Domain struct {
	epoch atomic.Uint64 // current grace-period epoch; advanced by Synchronize

	mu      sync.Mutex // guards readers list and callback queue
	readers []*Reader
	pending []callback

	opts Options

	// statistics
	gracePeriods atomic.Uint64
	defers       atomic.Uint64
	ran          atomic.Uint64
}

type callback struct {
	epoch uint64 // epoch observed when the callback was queued
	fn    func()
}

// Options configures a Domain.
type Options struct {
	// BatchSize is the number of deferred callbacks that accumulate
	// before Defer synchronously runs a grace period and drains the
	// queue, modeling the kernel's batched softirq processing of
	// call_rcu callbacks. Zero means DefaultBatchSize. Negative means
	// never drain automatically (callers must use Barrier).
	BatchSize int
}

// DefaultBatchSize is the automatic drain threshold used when
// Options.BatchSize is zero.
const DefaultBatchSize = 4096

// NewDomain returns a ready-to-use RCU domain.
func NewDomain(opts Options) *Domain {
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	d := &Domain{opts: opts}
	d.epoch.Store(1)
	return d
}

// Reader is a registered read-side context, analogous to a thread
// registered with urcu. A Reader must be used by one goroutine at a
// time. Read-side critical sections may nest.
type Reader struct {
	_     [cacheLine]byte
	state atomic.Uint64 // 0 = quiescent, else epoch at outermost Lock
	nest  int32         // nesting depth; accessed only by the owner
	_     [cacheLine]byte
	dom   *Domain
}

// Register creates and registers a new Reader with the domain.
func (d *Domain) Register() *Reader {
	r := &Reader{dom: d}
	d.mu.Lock()
	d.readers = append(d.readers, r)
	d.mu.Unlock()
	return r
}

// Unregister removes the reader from the domain. The reader must be
// quiescent (not inside a critical section).
func (d *Domain) Unregister(r *Reader) {
	if r.state.Load() != 0 {
		panic("rcu: Unregister of active reader")
	}
	d.mu.Lock()
	for i, rr := range d.readers {
		if rr == r {
			d.readers = append(d.readers[:i], d.readers[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

// Lock enters a read-side critical section. It performs a single store
// to the reader's private padded slot; it never touches shared state.
func (r *Reader) Lock() {
	if r.nest == 0 {
		r.state.Store(r.dom.epoch.Load())
	}
	r.nest++
}

// Unlock leaves a read-side critical section.
func (r *Reader) Unlock() {
	r.nest--
	switch {
	case r.nest == 0:
		r.state.Store(0)
	case r.nest < 0:
		panic("rcu: Unlock without matching Lock")
	}
}

// Active reports whether the reader is inside a critical section. It is
// intended for assertions in tests.
func (r *Reader) Active() bool { return r.state.Load() != 0 }

// Synchronize waits until every read-side critical section that was
// active when Synchronize was called has completed (a full grace
// period). Callbacks queued before the call are run before it returns.
func (d *Domain) Synchronize() {
	target := d.epoch.Add(1) // readers that observe >= target started after us
	d.gracePeriods.Add(1)

	d.mu.Lock()
	readers := make([]*Reader, len(d.readers))
	copy(readers, d.readers)
	d.mu.Unlock()

	for _, r := range readers {
		waitQuiescent(r, target)
	}
	d.drain(target)
}

// waitQuiescent blocks until the reader is quiescent or started its
// current critical section at or after the target epoch.
func waitQuiescent(r *Reader, target uint64) {
	for i := 0; ; i++ {
		s := r.state.Load()
		if s == 0 || s >= target {
			return
		}
		if i < 128 {
			continue
		}
		// Long-running reader: yield to let it make progress.
		yield()
	}
}

// Defer queues fn to run after a grace period. If the pending queue
// exceeds the configured batch size, Defer synchronously runs a grace
// period and drains the queue, as the kernel's callback machinery would.
func (d *Domain) Defer(fn func()) {
	d.defers.Add(1)
	e := d.epoch.Load()
	d.mu.Lock()
	d.pending = append(d.pending, callback{epoch: e, fn: fn})
	n := len(d.pending)
	d.mu.Unlock()
	if d.opts.BatchSize > 0 && n >= d.opts.BatchSize {
		d.Synchronize()
	}
}

// Barrier runs a grace period and then runs every callback queued before
// the call (the analogue of rcu_barrier).
func (d *Domain) Barrier() {
	d.Synchronize()
}

// drain runs all callbacks queued at an epoch strictly before target.
// The grace period advancing the domain to target has already elapsed.
func (d *Domain) drain(target uint64) {
	d.mu.Lock()
	var run, keep []callback
	for _, cb := range d.pending {
		if cb.epoch < target {
			run = append(run, cb)
		} else {
			keep = append(keep, cb)
		}
	}
	d.pending = keep
	d.mu.Unlock()

	for _, cb := range run {
		cb.fn()
	}
	d.ran.Add(uint64(len(run)))
}

// Stats is a snapshot of a domain's counters.
type Stats struct {
	GracePeriods uint64 // grace periods completed
	Defers       uint64 // callbacks queued via Defer
	Ran          uint64 // callbacks executed
	Pending      int    // callbacks still queued
	Readers      int    // registered readers
}

// Stats returns a snapshot of the domain's counters.
func (d *Domain) Stats() Stats {
	d.mu.Lock()
	p, r := len(d.pending), len(d.readers)
	d.mu.Unlock()
	return Stats{
		GracePeriods: d.gracePeriods.Load(),
		Defers:       d.defers.Load(),
		Ran:          d.ran.Load(),
		Pending:      p,
		Readers:      r,
	}
}
