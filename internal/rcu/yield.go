package rcu

import "runtime"

// yield lets other goroutines run while a grace period waits on a
// long-running reader. On a machine with fewer cores than runnable
// goroutines (like the CI host), Gosched is required for progress.
func yield() { runtime.Gosched() }
