package coherence

import "testing"

func TestTopology(t *testing.T) {
	topo := Topology{Sockets: 8, CoresPerSocket: 10}
	if topo.Cores() != 80 {
		t.Fatalf("Cores = %d", topo.Cores())
	}
	// Packed: cores 0..9 on socket 0.
	if topo.Socket(0, false) != 0 || topo.Socket(9, false) != 0 || topo.Socket(10, false) != 1 {
		t.Fatal("packed placement wrong")
	}
	// Spread: consecutive cores round-robin sockets.
	if topo.Socket(0, true) != 0 || topo.Socket(1, true) != 1 || topo.Socket(8, true) != 0 {
		t.Fatal("spread placement wrong")
	}
}

func TestAcquireCosts(t *testing.T) {
	m := E78870
	l := NewLine()
	// First touch: local (no previous owner).
	end := m.Acquire(l, 0, 0, false)
	if end != m.Lat.LocalHit {
		t.Fatalf("first acquire cost %d, want %d", end, m.Lat.LocalHit)
	}
	// Repeat by owner: local.
	end2 := m.Acquire(l, 0, end, false)
	if end2-end != m.Lat.LocalHit {
		t.Fatalf("owner re-acquire cost %d", end2-end)
	}
	// Same-socket core (packed: core 1 is socket 0).
	end3 := m.Acquire(l, 1, end2, false)
	if end3-end2 != m.Lat.SameSocket {
		t.Fatalf("same-socket transfer cost %d, want %d", end3-end2, m.Lat.SameSocket)
	}
	// Cross-socket core (packed: core 10 is socket 1).
	end4 := m.Acquire(l, 10, end3, false)
	if end4-end3 != m.Lat.CrossSocket {
		t.Fatalf("cross-socket transfer cost %d, want %d", end4-end3, m.Lat.CrossSocket)
	}
	if l.Transfers() != 2 {
		t.Fatalf("transfers = %d, want 2", l.Transfers())
	}
}

func TestAcquireQueues(t *testing.T) {
	m := E78870
	l := NewLine()
	m.Acquire(l, 0, 0, false)
	// Two cross-socket acquires issued at the same instant must
	// serialize: the second completes a full transfer after the first.
	a := m.Acquire(l, 10, 100, false)
	b := m.Acquire(l, 20, 100, false)
	if b != a+m.Lat.CrossSocket {
		t.Fatalf("second acquire finished at %d, want %d (queued)", b, a+m.Lat.CrossSocket)
	}
}

func TestReadSharingInvalidation(t *testing.T) {
	m := E78870
	l := NewLine()
	m.Acquire(l, 0, 0, false)
	// Owner read: local.
	if got := m.Read(l, 0, 1000, false); got != 1000+m.Lat.LocalHit {
		t.Fatalf("owner read cost %d", got-1000)
	}
	// Remote read: shared fetch.
	if got := m.Read(l, 10, 1000, false); got != 1000+m.Lat.SharedRead {
		t.Fatalf("remote read cost %d", got-1000)
	}
	// Owner write after sharing: invalidation, not a local hit.
	before := uint64(5000)
	after := m.Acquire(l, 0, before, false)
	if after-before == m.Lat.LocalHit {
		t.Fatal("write to shared line cost a local hit")
	}
}
