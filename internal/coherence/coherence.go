// Package coherence is a cost model for cache-line ownership transfer
// on a multi-socket machine — the substitute for the paper's 80-core
// 8-socket Intel E7-8870 testbed (§7.1), which this reproduction does
// not have. The model captures the one hardware effect the paper's
// scalability results hinge on: an exclusive (read-modify-write) access
// to a cache line owned by another core must fetch the line, these
// fetches serialize at the line's home, and a contended line "can take
// hundreds of cycles to fetch from a remote core" (§2).
//
// The discrete-event simulator (internal/sim) charges every simulated
// atomic operation through this model; local operations cost a handful
// of cycles, remote transfers cost hundreds, and back-to-back transfers
// of one line queue behind each other, which is what makes lock
// acquisition cost grow linearly with core count in Figures 16–18.
package coherence

// Topology describes the simulated machine's socket layout.
type Topology struct {
	Sockets        int
	CoresPerSocket int
}

// Cores returns the total core count.
func (t Topology) Cores() int { return t.Sockets * t.CoresPerSocket }

// Socket returns the socket of a core under the paper's two placement
// policies (§7.1): packed places consecutive cores on as few sockets as
// possible (used for microbenchmarks); spread round-robins cores across
// sockets (used for application benchmarks).
func (t Topology) Socket(core int, spread bool) int {
	if spread {
		return core % t.Sockets
	}
	return core / t.CoresPerSocket
}

// Latencies are the model's cycle costs. They are calibrated, not
// measured: the paper's own anchor points (≈7,400 cycles per fault at
// 10 cores in all designs; ≈8,869 for pure RCU at 80 cores; lock-based
// designs "more than an order of magnitude" worse at 80 cores) pin the
// constants, and EXPERIMENTS.md documents the calibration.
type Latencies struct {
	// LocalHit is an atomic op on a line this core already owns.
	LocalHit uint64
	// SameSocket is an exclusive transfer from a core on the same socket.
	SameSocket uint64
	// CrossSocket is an exclusive transfer across the interconnect.
	// It is an *effective* cost: raw transfer plus the directory,
	// queuing and CAS-retry overheads a saturated rwsem word suffers.
	CrossSocket uint64
	// SharedRead is a read-only fetch of a remotely owned line.
	SharedRead uint64
}

// E78870 approximates the paper's 8-socket, 80-core machine.
var E78870 = Machine{
	Topology: Topology{Sockets: 8, CoresPerSocket: 10},
	Lat: Latencies{
		LocalHit:    8,
		SameSocket:  180,
		CrossSocket: 950,
		SharedRead:  120,
	},
	ClockHz: 2.4e9,
}

// Machine bundles a topology with its latencies and clock.
type Machine struct {
	Topology Topology
	Lat      Latencies
	ClockHz  float64
}

// Line is one shared cache line: who owns it exclusively, whether other
// cores hold shared copies, and until when the line is busy completing
// a previous transfer. All times are virtual cycles managed by the
// caller (the simulator runs one event at a time, so no atomicity is
// needed here).
type Line struct {
	owner     int // core holding the line exclusively (-1: none yet)
	shared    bool
	busyUntil uint64

	transfers uint64 // ownership changes (contention diagnostic)
}

// NewLine returns an unowned line.
func NewLine() *Line { return &Line{owner: -1} }

// Transfers returns how many ownership transfers the line has seen.
func (l *Line) Transfers() uint64 { return l.transfers }

// Acquire performs a read-modify-write of the line by core at virtual
// time now, returning the completion time. Transfers serialize: if the
// line is still busy with an earlier transfer, this one queues behind
// it. spread selects the core-placement policy for socket distance.
func (m *Machine) Acquire(l *Line, core int, now uint64, spread bool) uint64 {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil // queue behind the in-flight transfer
	}
	var cost uint64
	switch {
	case l.owner == core && !l.shared:
		cost = m.Lat.LocalHit
	case l.owner == core: // owned here but shared copies exist: invalidate
		cost = m.Lat.SameSocket
	case l.owner < 0:
		cost = m.Lat.LocalHit
	case m.Topology.Socket(l.owner, spread) == m.Topology.Socket(core, spread):
		cost = m.Lat.SameSocket
	default:
		cost = m.Lat.CrossSocket
	}
	if l.owner >= 0 && l.owner != core {
		l.transfers++ // first touch is not a transfer
	}
	l.owner = core
	l.shared = false
	l.busyUntil = start + cost
	return start + cost
}

// Read performs a read-only access at virtual time now, returning the
// completion time. A core reading its own line pays a local hit; others
// pay a shared fetch. Read sharing does not serialize through
// busyUntil (multiple readers can hold copies), but it marks the line
// shared so the owner's next write pays an invalidation.
func (m *Machine) Read(l *Line, core int, now uint64, spread bool) uint64 {
	if l.owner == core || l.owner < 0 {
		return now + m.Lat.LocalHit
	}
	l.shared = true
	return now + m.Lat.SharedRead
}
